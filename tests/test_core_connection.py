"""End-to-end tests of FMTCP over the simulated network."""

import pytest

from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.metrics.collectors import MetricsSuite
from repro.sim.rng import RngStreams
from repro.workloads.sources import BulkSource, RandomPayloadSource
from tests.conftest import make_two_path


def run_fmtcp(
    source,
    loss2=0.0,
    duration=30.0,
    config=None,
    sink=None,
    delay2=0.010,
    seed=7,
):
    network, paths, trace = make_two_path(loss2=loss2, delay2=delay2, seed=seed)
    metrics = MetricsSuite(trace)
    connection = FmtcpConnection(
        network.sim,
        paths,
        source,
        config=config or FmtcpConfig(),
        trace=trace,
        rng=RngStreams(seed),
        sink=sink,
    )
    connection.start()
    network.sim.run(until=duration)
    return network, connection, metrics


def test_statistical_mode_delivers_blocks_in_order():
    delivered = []
    __, connection, __ = run_fmtcp(
        BulkSource(), duration=10.0, sink=lambda block_id, data: delivered.append(block_id)
    )
    assert delivered == list(range(len(delivered)))
    assert len(delivered) > 50


def test_real_mode_delivers_exact_bytes_clean_path():
    config = FmtcpConfig(coding="real", max_pending_blocks=4)
    source = RandomPayloadSource(total_bytes=4 * config.block_bytes)
    chunks = {}
    __, connection, __ = run_fmtcp(
        source,
        duration=30.0,
        config=config,
        sink=lambda block_id, data: chunks.__setitem__(block_id, data),
    )
    reassembled = b"".join(chunks[block_id] for block_id in sorted(chunks))
    assert reassembled == bytes(source.transcript)


def test_real_mode_delivers_exact_bytes_under_loss():
    config = FmtcpConfig(coding="real", max_pending_blocks=4)
    source = RandomPayloadSource(total_bytes=6 * config.block_bytes + 777)
    chunks = {}
    __, connection, __ = run_fmtcp(
        source,
        loss2=0.25,
        duration=120.0,
        config=config,
        sink=lambda block_id, data: chunks.__setitem__(block_id, data),
    )
    reassembled = b"".join(chunks[block_id] for block_id in sorted(chunks))
    assert reassembled == bytes(source.transcript)


def test_no_content_retransmission_fresh_symbols_cover_losses():
    """Symbols lost in transit are replaced by *new* symbols: the sender's
    total sent count exceeds the receiver's received count by exactly the
    in-transit losses, and blocks still decode."""
    __, connection, __ = run_fmtcp(BulkSource(), loss2=0.2, duration=20.0)
    sender = connection.sender
    receiver = connection.receiver
    assert sender.symbols_lost > 0
    assert receiver.blocks_decoded > 10
    in_flight = sum(
        block.in_flight_total() for block in connection.block_manager.pending_blocks
    )
    # Conservation: every sent symbol is received, lost, or still in flight.
    # Two small, legitimate discrepancies are allowed for: symbols of
    # blocks retired while their packets were still in the air (positive
    # slack) and spurious dup-ack declarations whose packets arrived after
    # all (counted both lost and received, negative slack).
    unaccounted = sender.symbols_sent - (
        receiver.symbols_received + sender.symbols_lost + in_flight
    )
    assert abs(unaccounted) < 0.01 * sender.symbols_sent + 1000


def test_redundancy_stays_modest_on_clean_paths():
    __, connection, __ = run_fmtcp(BulkSource(), duration=20.0)
    # Margin of log2(1/δ̂)=10 over k=256 plus dependence waste ≈ 4-6 %.
    assert connection.redundancy_ratio() < 1.10


def test_block_done_events_at_sender():
    network, paths, trace = make_two_path()
    records = []
    trace.subscribe("conn.block_done", records.append)
    connection = FmtcpConnection(
        network.sim, paths, BulkSource(), config=FmtcpConfig(), trace=trace
    )
    connection.start()
    network.sim.run(until=5.0)
    assert records
    ids = [record["block_id"] for record in records]
    # Blocks may decode (and be confirmed) slightly out of order, but each
    # is reported exactly once and together they form a dense prefix plus
    # possibly a few stragglers still undecoded at cut-off.
    assert len(ids) == len(set(ids))
    assert sorted(ids)[: max(0, len(ids) - 8)] == list(range(max(0, len(ids) - 8)))
    assert all(record["delay"] > 0 for record in records)


def test_k_bar_feedback_reaches_sender():
    __, connection, __ = run_fmtcp(BulkSource(), duration=2.0)
    # After a couple of RTTs some pending block must show acked symbols
    # or blocks must already be completing.
    pending = connection.block_manager.pending_blocks
    assert connection.receiver.blocks_decoded > 0 or any(
        block.k_bar > 0 for block in pending
    )


def test_goodput_counts_only_delivered_blocks():
    __, connection, metrics = run_fmtcp(BulkSource(), duration=10.0)
    assert metrics.goodput.total_bytes == connection.delivered_bytes
    assert connection.delivered_bytes == connection.receiver.delivered_bytes


def test_finite_source_completes_and_idles():
    config = FmtcpConfig(max_pending_blocks=4)
    source = BulkSource(total_bytes=10 * config.block_bytes)
    __, connection, __ = run_fmtcp(source, duration=30.0, config=config)
    assert connection.delivered_blocks == 10
    assert not connection.block_manager.pending_blocks


def test_greedy_allocation_mode_runs():
    config = FmtcpConfig(allocation="greedy")
    __, connection, __ = run_fmtcp(BulkSource(), duration=5.0, config=config)
    assert connection.delivered_blocks > 0


def test_lia_congestion_mode_runs():
    config = FmtcpConfig(congestion="lia")
    __, connection, __ = run_fmtcp(BulkSource(), duration=5.0, config=config)
    assert connection.delivered_blocks > 0


def test_receiver_buffer_bounded_by_pending_limit():
    config = FmtcpConfig(max_pending_blocks=6)
    __, connection, __ = run_fmtcp(BulkSource(), loss2=0.3, duration=20.0, config=config)
    assert connection.receiver.buffered_blocks <= 6


def test_empty_paths_rejected():
    from repro.sim.engine import Simulator

    with pytest.raises(ValueError):
        FmtcpConnection(Simulator(), [], BulkSource())


def test_determinism_same_seed_same_outcome():
    results = []
    for __ in range(2):
        __, connection, metrics = run_fmtcp(BulkSource(), loss2=0.1, duration=5.0, seed=99)
        results.append(
            (connection.delivered_blocks, connection.sender.symbols_sent)
        )
    assert results[0] == results[1]


def test_different_seeds_differ():
    outcomes = set()
    for seed in (1, 2, 3):
        __, connection, __ = run_fmtcp(BulkSource(), loss2=0.1, duration=5.0, seed=seed)
        outcomes.add(connection.sender.symbols_sent)
    assert len(outcomes) > 1
