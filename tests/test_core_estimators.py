"""Unit and property tests for RT/EDT/SEDT/EAT estimators (Defs. 5-8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators import (
    PathEstimate,
    eat,
    eat_table,
    edt_for_flows,
    expected_rt,
    rank_paths_by_sedt,
    sedt,
)


def estimate(subflow_id=0, rtt=0.2, rto=0.4, loss=0.0, window_space=1, tau=0.0):
    return PathEstimate(
        subflow_id=subflow_id,
        rtt=rtt,
        rto=rto,
        loss=loss,
        window_space=window_space,
        tau=tau,
    )


# ----------------------------------------------------------------------
# Eq. (10): RT.
# ----------------------------------------------------------------------
def test_rt_lossless_equals_rtt():
    assert expected_rt(0.2, 0.0, 1.0) == pytest.approx(0.2)


def test_rt_blends_rtt_and_rto():
    assert expected_rt(0.2, 0.25, 1.0) == pytest.approx(0.75 * 0.2 + 0.25 * 1.0)


# ----------------------------------------------------------------------
# Eq. (13): SEDT.
# ----------------------------------------------------------------------
def test_sedt_lossless_is_half_rtt():
    assert sedt(0.2, 0.0, 1.0) == pytest.approx(0.1)


def test_sedt_formula():
    # p/(1-p)*R + r/2 with p=0.2, R=0.5, r=0.2
    assert sedt(0.2, 0.2, 0.5) == pytest.approx(0.25 * 0.5 + 0.1)


def test_sedt_grows_with_loss():
    assert sedt(0.2, 0.3, 0.5) > sedt(0.2, 0.1, 0.5)


# ----------------------------------------------------------------------
# EDT with best-flow repair (Lemma 1's recursion).
# ----------------------------------------------------------------------
def test_edt_best_flow_equals_its_sedt():
    flows = [
        estimate(0, rtt=0.1, rto=0.2, loss=0.0),
        estimate(1, rtt=0.4, rto=0.8, loss=0.2),
    ]
    edts = edt_for_flows(flows)
    assert edts[0] == pytest.approx(sedt(0.1, 0.0, 0.2))


def test_edt_inferior_flow_repairs_on_best():
    flows = [
        estimate(0, rtt=0.1, rto=0.2, loss=0.0),
        estimate(1, rtt=0.4, rto=0.8, loss=0.2),
    ]
    edts = edt_for_flows(flows)
    best = sedt(0.1, 0.0, 0.2)
    expected = 0.8 * 0.2 + 0.2 * (0.8 + best)
    assert edts[1] == pytest.approx(expected)


def test_edt_single_flow():
    flows = [estimate(0, rtt=0.2, rto=0.4, loss=0.1)]
    assert edt_for_flows(flows)[0] == pytest.approx(sedt(0.2, 0.1, 0.4))


def test_edt_empty_rejected():
    with pytest.raises(ValueError):
        edt_for_flows([])


# ----------------------------------------------------------------------
# Eq. (11): EAT.
# ----------------------------------------------------------------------
def test_eat_with_window_space_equals_edt():
    flow = estimate(window_space=3)
    assert eat(flow, edt=0.15) == pytest.approx(0.15)


def test_eat_window_full_adds_rt_minus_tau():
    flow = estimate(rtt=0.2, rto=0.4, loss=0.0, window_space=0, tau=0.05)
    assert eat(flow, edt=0.1) == pytest.approx(0.1 + 0.2 - 0.05)


def test_eat_clamped_at_zero():
    flow = estimate(rtt=0.2, rto=0.4, loss=0.0, window_space=0, tau=10.0)
    assert eat(flow, edt=0.1) == 0.0


def test_eat_virtual_queue_consumes_window_then_waits():
    flow = estimate(rtt=0.2, rto=0.4, loss=0.0, window_space=2, tau=0.0)
    assert eat(flow, edt=0.1, virtual_queue=0) == pytest.approx(0.1)
    assert eat(flow, edt=0.1, virtual_queue=1) == pytest.approx(0.1)
    # Third packet exceeds the window: one expected response time of wait.
    assert eat(flow, edt=0.1, virtual_queue=2) == pytest.approx(0.1 + 0.2)
    # Each further packet waits one more RT.
    assert eat(flow, edt=0.1, virtual_queue=3) == pytest.approx(0.1 + 0.4)


def test_eat_virtual_queue_is_monotone():
    flow = estimate(rtt=0.2, rto=0.4, loss=0.05, window_space=2, tau=0.0)
    values = [eat(flow, edt=0.1, virtual_queue=q) for q in range(8)]
    assert values == sorted(values)


def test_eat_table_initial():
    flows = [
        estimate(0, rtt=0.1, window_space=1),
        estimate(1, rtt=0.5, window_space=0, tau=0.0),
    ]
    table = eat_table(flows)
    assert table[0] == pytest.approx(0.05)
    assert table[1] > table[0]


# ----------------------------------------------------------------------
# Theorem 2's ordering and validation.
# ----------------------------------------------------------------------
def test_rank_paths_by_sedt():
    flows = [
        estimate(0, rtt=0.4, loss=0.1, rto=0.8),
        estimate(1, rtt=0.1, loss=0.0, rto=0.2),
        estimate(2, rtt=0.2, loss=0.05, rto=0.4),
    ]
    assert rank_paths_by_sedt(flows) == [1, 2, 0]


def test_path_estimate_validation():
    with pytest.raises(ValueError):
        estimate(loss=1.0)
    with pytest.raises(ValueError):
        estimate(rtt=-0.1)


@settings(max_examples=60, deadline=None)
@given(
    rtt=st.floats(min_value=0.001, max_value=2.0),
    loss=st.floats(min_value=0.0, max_value=0.9),
    rto_factor=st.floats(min_value=1.0, max_value=10.0),
)
def test_property_sedt_at_least_half_rtt(rtt, loss, rto_factor):
    assert sedt(rtt, loss, rtt * rto_factor) >= rtt / 2 - 1e-12


@settings(max_examples=60, deadline=None)
@given(
    rtt1=st.floats(min_value=0.01, max_value=1.0),
    rtt2=st.floats(min_value=0.01, max_value=1.0),
    loss1=st.floats(min_value=0.0, max_value=0.5),
    loss2=st.floats(min_value=0.0, max_value=0.5),
)
def test_property_edt_of_best_flow_is_minimum(rtt1, rtt2, loss1, loss2):
    """The best flow's EDT never exceeds any flow's EDT (Theorem 2 spirit)."""
    flows = [
        estimate(0, rtt=rtt1, rto=2 * rtt1, loss=loss1),
        estimate(1, rtt=rtt2, rto=2 * rtt2, loss=loss2),
    ]
    edts = edt_for_flows(flows)
    sedts = {0: sedt(rtt1, loss1, 2 * rtt1), 1: sedt(rtt2, loss2, 2 * rtt2)}
    best = min(sedts, key=lambda sf: (sedts[sf], sf))
    assert edts[best] <= min(edts.values()) + 1e-12
