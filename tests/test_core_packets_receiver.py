"""Unit tests for FMTCP wire formats and receiver internals."""

import random

import pytest

from repro.core.config import FmtcpConfig
from repro.core.packets import FmtcpFeedback, FmtcpSegmentPayload, SymbolGroup
from repro.core.receiver import FmtcpReceiver
from repro.fountain.codec import BlockEncoder
from repro.sim.engine import Simulator
from repro.sim.trace import TraceBus


class FakeSegment:
    def __init__(self, payload):
        self.payload = payload


def group(block_id=0, count=4, block_k=8, block_bytes=64, symbols=None):
    return SymbolGroup(
        block_id=block_id,
        count=count,
        block_k=block_k,
        block_bytes=block_bytes,
        symbols=symbols,
    )


# ----------------------------------------------------------------------
# Wire formats.
# ----------------------------------------------------------------------
def test_symbol_group_validation():
    with pytest.raises(ValueError):
        group(count=0)
    with pytest.raises(ValueError):
        SymbolGroup(block_id=0, count=2, block_k=8, block_bytes=64, symbols=[])


def test_payload_requires_groups():
    with pytest.raises(ValueError):
        FmtcpSegmentPayload([])


def test_payload_total_symbols():
    payload = FmtcpSegmentPayload([group(count=3), group(block_id=1, count=5)])
    assert payload.total_symbols() == 8


def test_feedback_fields():
    feedback = FmtcpFeedback(k_bar={3: 7}, decoded_in_order=3, decoded_out_of_order=(5,))
    assert feedback.k_bar[3] == 7
    assert feedback.decoded_in_order == 3
    assert feedback.decoded_out_of_order == (5,)


# ----------------------------------------------------------------------
# Receiver (driven directly, no network).
# ----------------------------------------------------------------------
def make_receiver(coding="statistical", sink=None, trace=None):
    config = FmtcpConfig(
        coding=coding, symbols_per_block=8, symbol_size=8, max_pending_blocks=4
    )
    return (
        FmtcpReceiver(
            Simulator(),
            config,
            trace=trace,
            rng=random.Random(0),
            sink=sink,
        ),
        config,
    )


def feed(receiver, block_id, count, block_k=8, block_bytes=64, symbols=None):
    payload = FmtcpSegmentPayload(
        [group(block_id=block_id, count=count, block_k=block_k,
               block_bytes=block_bytes, symbols=symbols)]
    )
    receiver.on_segment(0, FakeSegment(payload))


def test_block_decodes_after_enough_symbols():
    receiver, __ = make_receiver()
    while receiver.blocks_decoded == 0:
        feed(receiver, 0, 1)
        assert receiver.symbols_received < 100
    assert receiver.delivered_blocks == 1
    assert receiver.delivered_bytes == 64


def test_out_of_order_decode_waits_for_delivery():
    delivered = []
    receiver, __ = make_receiver(sink=lambda block_id, data: delivered.append(block_id))
    # Decode block 1 fully while block 0 is untouched.
    while 1 not in receiver._decoded_waiting and receiver.delivered_blocks == 0:
        feed(receiver, 1, 1)
    assert delivered == []  # in-order delivery must hold it back
    while receiver.delivered_blocks < 2:
        feed(receiver, 0, 1)
    assert delivered == [0, 1]


def test_feedback_reports_rank_of_active_blocks():
    receiver, __ = make_receiver()
    feed(receiver, 0, 3)
    feedback = receiver.feedback()
    assert 0 in feedback.k_bar
    assert 0 < feedback.k_bar[0] <= 3
    assert feedback.decoded_in_order == 0


def test_feedback_reports_out_of_order_decodes():
    receiver, __ = make_receiver()
    while 1 not in receiver._decoded_waiting:
        feed(receiver, 1, 2)
    feedback = receiver.feedback()
    assert 1 in feedback.decoded_out_of_order
    assert feedback.decoded_in_order == 0


def test_symbols_for_decoded_block_counted_redundant():
    receiver, __ = make_receiver()
    while receiver.blocks_decoded == 0:
        feed(receiver, 0, 2)
    before = receiver.symbols_redundant
    feed(receiver, 0, 3)  # stale symbols arriving after decode
    assert receiver.symbols_redundant == before + 3


def test_real_mode_decodes_actual_bytes():
    data = bytes(range(64))
    encoder = BlockEncoder(data, k=8, part_size=8, rng=random.Random(1))
    delivered = {}
    receiver, config = make_receiver(
        coding="real", sink=lambda block_id, payload: delivered.__setitem__(block_id, payload)
    )
    while receiver.blocks_decoded == 0:
        feed(
            receiver,
            0,
            1,
            block_bytes=64,
            symbols=[encoder.next_symbol()],
        )
    assert delivered[0] == data


def test_trace_events_emitted():
    trace = TraceBus()
    decoded, delivered = [], []
    trace.subscribe("fmtcp.block_decoded", decoded.append)
    trace.subscribe("conn.delivered", delivered.append)
    receiver, __ = make_receiver(trace=trace)
    while receiver.blocks_decoded == 0:
        feed(receiver, 0, 1)
    assert len(decoded) == 1
    assert len(delivered) == 1
    assert delivered[0]["bytes"] == 64


def test_buffered_blocks_counts_active_and_waiting():
    receiver, __ = make_receiver()
    feed(receiver, 0, 1)  # active
    while 1 not in receiver._decoded_waiting:
        feed(receiver, 1, 2)  # decoded, waiting for block 0
    assert receiver.buffered_blocks == 2


def test_multiple_groups_in_one_packet():
    receiver, __ = make_receiver()
    payload = FmtcpSegmentPayload(
        [group(block_id=0, count=2), group(block_id=1, count=3)]
    )
    receiver.on_segment(0, FakeSegment(payload))
    assert receiver.symbols_received == 5
    feedback = receiver.feedback()
    assert set(feedback.k_bar) == {0, 1}
