"""Corruption models: damage effects, gating chains, CRC evasion and the
copy-never-mutate discipline the retransmission buffers depend on.
"""

import random

import pytest

from repro.net.corruption import (
    BernoulliCorruption,
    CorruptedPayload,
    GilbertElliottCorruption,
    NoCorruption,
    corrupt_packet,
)
from repro.net.integrity import seal, verify
from repro.net.link import Link
from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.engine import Simulator


def _sealed(payload=b"payload-bytes", size=100):
    return seal(Packet(size, "a", "b", 1, 2, payload=payload))


# ----------------------------------------------------------------------
# Damage effects.
# ----------------------------------------------------------------------
def test_bitflip_is_detectable_by_default():
    packet = _sealed()
    (damaged,) = corrupt_packet(packet, "bitflip", random.Random(1))
    assert damaged is not packet
    assert isinstance(damaged.payload, CorruptedPayload)
    assert not verify(damaged)
    # The original (sender-owned) packet is untouched and still clean.
    assert packet.payload == b"payload-bytes"
    assert verify(packet)


def test_truncate_shrinks_size_and_fails_verify():
    packet = _sealed(size=100)
    (damaged,) = corrupt_packet(packet, "truncate", random.Random(1))
    assert damaged.size < 100
    assert not verify(damaged)
    assert packet.size == 100


def test_duplicate_delivers_clean_plus_mutated_twin():
    packet = _sealed()
    first, second = corrupt_packet(packet, "duplicate", random.Random(1))
    assert first is packet
    assert verify(first)
    assert not verify(second)


def test_unknown_effect_rejected():
    with pytest.raises(ValueError):
        corrupt_packet(_sealed(), "gamma_ray", random.Random(1))


# ----------------------------------------------------------------------
# CRC evasion: deep mutation + re-seal, with graceful downgrade.
# ----------------------------------------------------------------------
class _MutablePayload:
    def __init__(self, data):
        self.data = data

    def integrity_digest(self):
        return b"mp:" + self.data

    def integrity_mutate(self, rng):
        flipped = bytearray(self.data)
        flipped[rng.randrange(len(flipped))] ^= 0x01
        return _MutablePayload(bytes(flipped))


def test_evading_bitflip_reseals_a_mutated_copy():
    original = _MutablePayload(b"secret")
    packet = _sealed(payload=original)
    (damaged,) = corrupt_packet(packet, "bitflip", random.Random(1), evade_crc=1.0)
    # Passes the link CRC (re-sealed), but the content differs...
    assert verify(damaged)
    assert damaged.payload.data != b"secret"
    # ...and the sender's object was never touched.
    assert packet.payload is original
    assert original.data == b"secret"


def test_evasion_downgrades_when_payload_cannot_deep_mutate():
    packet = _sealed(payload=12345)  # synthetic int payload: no mutate hook
    (damaged,) = corrupt_packet(packet, "bitflip", random.Random(1), evade_crc=1.0)
    assert isinstance(damaged.payload, CorruptedPayload)
    assert not verify(damaged)


def test_truncation_never_evades():
    packet = _sealed(payload=_MutablePayload(b"secret"))
    (damaged,) = corrupt_packet(packet, "truncate", random.Random(1), evade_crc=1.0)
    assert not verify(damaged)


# ----------------------------------------------------------------------
# Gating models.
# ----------------------------------------------------------------------
def test_no_corruption_passes_everything():
    model = NoCorruption()
    assert model.apply(_sealed(), 0.0, random.Random(1)) is None
    assert model.rate_at(0.0) == 0.0


def test_bernoulli_rate_zero_draws_no_randomness():
    rng = random.Random(1)
    state = rng.getstate()
    assert BernoulliCorruption(0.0).apply(_sealed(), 0.0, rng) is None
    assert rng.getstate() == state


def test_bernoulli_rate_one_corrupts_everything():
    model = BernoulliCorruption(1.0, effect="bitflip")
    assert model.rate_at(5.0) == 1.0
    result = model.apply(_sealed(), 0.0, random.Random(1))
    assert result is not None and not verify(result[0])


def test_bernoulli_validates_arguments():
    with pytest.raises(ValueError):
        BernoulliCorruption(1.5)
    with pytest.raises(ValueError):
        BernoulliCorruption(0.1, effect="nope")
    with pytest.raises(ValueError):
        BernoulliCorruption(0.1, evade_crc=2.0)


def test_gilbert_elliott_state_machine_bursts():
    model = GilbertElliottCorruption(
        p_gb=1.0, p_bg=0.0, corrupt_good=0.0, corrupt_bad=1.0
    )
    rng = random.Random(1)
    assert model.state == model.GOOD
    first = model.apply(_sealed(), 0.0, rng)
    assert model.state == model.BAD
    # Transitioned to BAD on the first packet and stays there: everything
    # from then on is corrupted.
    assert first is not None
    for __ in range(5):
        assert model.apply(_sealed(), 0.0, rng) is not None


def test_gilbert_elliott_stationary_rate():
    model = GilbertElliottCorruption(
        p_gb=0.1, p_bg=0.3, corrupt_good=0.0, corrupt_bad=0.4
    )
    assert model.stationary_bad_fraction() == pytest.approx(0.25)
    assert model.rate_at(0.0) == pytest.approx(0.1)


# ----------------------------------------------------------------------
# Link wiring.
# ----------------------------------------------------------------------
def test_link_counts_and_delivers_corrupted_packets():
    sim = Simulator()
    received = []
    node = Node("b")
    node.bind(2, received.append)
    link = Link(
        sim,
        "l",
        node,
        bandwidth_bps=8e6,
        delay_s=0.001,
        rng=random.Random(7),
        corruption_model=BernoulliCorruption(1.0, effect="duplicate"),
    )
    packet = _sealed()
    packet.route = (link,)
    packet.next_link().send(packet)
    sim.run(until=1.0)
    assert link.packets_corrupted == 1
    # duplicate: the clean original plus one damaged twin arrive.
    assert len(received) == 2
    assert sum(1 for p in received if not verify(p)) == 1


def test_link_without_model_leaves_packets_alone():
    sim = Simulator()
    received = []
    node = Node("b")
    node.bind(2, received.append)
    link = Link(
        sim, "l", node, bandwidth_bps=8e6, delay_s=0.001, rng=random.Random(7)
    )
    assert link.corruption_model is None
    packet = _sealed()
    packet.route = (link,)
    packet.next_link().send(packet)
    sim.run(until=1.0)
    assert link.packets_corrupted == 0
    assert received == [packet]
