"""Corruption soak: both protocols through every corruption preset, with
byte-verified delivery.

Every run must satisfy the chaos invariants *plus* the integrity ones
checked by :func:`repro.faults.run_corruption`:

5. zero corrupted bytes delivered (reassembled stream == source
   transcript, byte for byte);
6. when the wire corrupted packets, at least one integrity defense
   (CRC discard / DSS checksum reject / decoder quarantine) fired.

Runs are deterministic per seed; a failure reproduces exactly from the
seed named in the assertion message. Set ``REPRO_FLIGHT_DIR`` for
flight-recorder dumps of failing runs (CI uploads them as artifacts);
set ``REPRO_FAST=1`` to run a single seed per preset.
"""

import os

import pytest

from repro.faults import (
    CORRUPTION_SCENARIOS,
    FaultScenario,
    run_chaos,
    run_churn,
    run_corruption,
)

SOAK_SEEDS = (1,) if os.environ.get("REPRO_FAST") else tuple(range(1, 31))
SOAK_PRESETS = ("bit_rot", "corruption_burst", "truncation_storm")
FLIGHT_DIR = os.environ.get("REPRO_FLIGHT_DIR") or None


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
@pytest.mark.parametrize("name", SOAK_PRESETS)
def test_corruption_soak(protocol, name):
    """30 seeds per preset per protocol, zero violations."""
    failures = []
    for seed in SOAK_SEEDS:
        report = run_corruption(
            protocol, FaultScenario.named(name), seed=seed,
            flight_dump_dir=FLIGHT_DIR,
        )
        if not report.ok:
            detail = f"seed {seed}: {report.violations}"
            if report.flight_dump_path:
                detail += f" [flight dump: {report.flight_dump_path}]"
            failures.append(detail)
    assert not failures, (
        f"{protocol}/{name} corruption violations:\n" + "\n".join(failures)
    )


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
@pytest.mark.parametrize("name", sorted(CORRUPTION_SCENARIOS))
def test_corruption_presets_complete_with_defenses_firing(protocol, name):
    report = run_corruption(
        protocol, FaultScenario.named(name), seed=2, flight_dump_dir=FLIGHT_DIR
    )
    assert report.ok, f"{name}/{protocol}: {report.violations}"
    assert report.completed
    # The transfer was still running when corruption began and the wire
    # actually damaged packets, so the run was not vacuous.
    scenario = CORRUPTION_SCENARIOS[name]()
    assert report.completion_time_s > scenario.fault_start
    assert report.packets_corrupted > 0
    assert sum(report.corruption_stats.values()) > 0


def test_corruption_report_shape():
    report = run_corruption("fmtcp", FaultScenario.named("bit_rot"))
    assert report.protocol == "fmtcp"
    assert report.scenario_name == "bit_rot"
    assert report.expected_bytes > 0
    assert report.delivered_bytes == report.expected_bytes
    assert report.completion_time_s is not None
    assert set(report.corruption_stats) >= {
        "packets_discarded_corrupt",
        "acks_discarded_corrupt",
    }


# ----------------------------------------------------------------------
# Harness routing: each scenario family goes to the harness that can
# actually check its invariants.
# ----------------------------------------------------------------------
def test_run_chaos_rejects_corruption_scenarios():
    with pytest.raises(ValueError, match="corruption"):
        run_chaos("fmtcp", FaultScenario.named("bit_rot"))


def test_run_churn_rejects_corruption_free_routing():
    with pytest.raises(ValueError):
        run_churn("fmtcp", FaultScenario.named("bit_rot"))


def test_run_corruption_rejects_plain_fault_scenarios():
    with pytest.raises(ValueError, match="no corruption"):
        run_corruption("fmtcp", FaultScenario.named("path_death"))


def test_run_corruption_rejects_unknown_protocol():
    with pytest.raises(ValueError, match="protocol"):
        run_corruption("sctp", FaultScenario.named("bit_rot"))
