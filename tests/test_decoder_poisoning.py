"""Decoder poisoning: a corrupted symbol that evades the link CRC must
never surface as corrupted application bytes.

Two detection layers are exercised:

* **GF(2) inconsistency** — a dependent coefficient row whose payload
  does not reduce to zero proves the basis holds a corrupted symbol;
* **block CRC** — the backstop for a poisoned basis that stayed
  consistent long enough to decode.

Either way the receiver quarantines the block (evicts the whole symbol
basis, bumps the quarantine epoch) and decodes correctly from
replacement symbols.
"""

import random
import zlib

import pytest

from repro.core.config import FmtcpConfig
from repro.core.packets import SymbolGroup
from repro.core.receiver import FmtcpReceiver
from repro.fountain.codec import BlockDecoder, BlockEncoder
from repro.fountain.gf2 import Gf2Eliminator
from repro.sim.engine import Simulator

SEEDS = range(1, 31)


# ----------------------------------------------------------------------
# GF(2) inconsistency accounting.
# ----------------------------------------------------------------------
def test_gf2_consistent_dependent_row_is_not_flagged():
    eliminator = Gf2Eliminator(2)
    eliminator.add_row(0b01, 1)
    eliminator.add_row(0b10, 2)
    eliminator.add_row(0b11, 3)  # = row1 XOR row2: residual 0
    assert eliminator.dependent_rows == 1
    assert eliminator.inconsistent_rows == 0
    assert not eliminator.inconsistent


def test_gf2_contradictory_row_proves_corruption():
    eliminator = Gf2Eliminator(2)
    eliminator.add_row(0b01, 1)
    eliminator.add_row(0b10, 2)
    eliminator.add_row(0b11, 4)  # should be 3: residual != 0
    assert eliminator.inconsistent_rows == 1
    assert eliminator.inconsistent


def test_block_decoder_reports_poisoned():
    data = bytes(range(64))
    encoder = BlockEncoder(data, k=8, part_size=8, rng=random.Random(3))
    decoder = BlockDecoder(k=8, part_size=8, data_length=64)
    corrupted = encoder.next_symbol().integrity_mutate(random.Random(3))
    decoder.add_symbol(corrupted)
    while not decoder.poisoned and not decoder.is_complete:
        decoder.add_symbol(encoder.next_symbol())
    # Either the system contradicted itself (poisoned) or it completed
    # with the corrupted row still in the basis — in which case the
    # decoded bytes are wrong, which is exactly what the receiver's
    # block-CRC backstop exists to catch.
    if not decoder.poisoned:
        assert decoder.is_complete and decoder.decode() != data


# ----------------------------------------------------------------------
# Receiver-level quarantine: 30 seeds, one mutated symbol each.
# ----------------------------------------------------------------------
def _group_for(symbol, block_id, k, block_bytes, crc):
    return SymbolGroup(
        block_id=block_id,
        count=1,
        block_k=k,
        block_bytes=block_bytes,
        symbols=[symbol],
        block_crc=crc,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_receiver_quarantines_and_recovers_from_one_mutated_symbol(seed):
    rng = random.Random(seed)
    config = FmtcpConfig(coding="real")
    k = 16
    block_bytes = k * config.symbol_size
    data = bytes(rng.randrange(256) for __ in range(block_bytes))
    crc = zlib.crc32(data)
    encoder = BlockEncoder(data, k=k, part_size=config.symbol_size, rng=rng)

    delivered = {}
    receiver = FmtcpReceiver(
        Simulator(),
        config,
        sink=lambda block_id, payload: delivered.__setitem__(block_id, payload),
    )

    poison_at = rng.randrange(k)  # anywhere in the first basis
    fed = 0
    while not delivered and fed < 20 * k:
        symbol = encoder.next_symbol()
        if fed == poison_at:
            symbol = symbol.integrity_mutate(rng)
        receiver._absorb_group(_group_for(symbol, 0, k, block_bytes, crc))
        fed += 1

    assert receiver.blocks_quarantined >= 1, f"seed {seed}: never quarantined"
    assert receiver.symbols_evicted >= 1
    # The transfer still completed, exactly once, with the true bytes.
    assert delivered == {0: data}, f"seed {seed}: wrong or missing delivery"
    # Quarantine state is cleared once the block decodes cleanly, so the
    # feedback no longer advertises an epoch for it.
    assert receiver.feedback().quarantine == {}


def test_quarantine_epoch_rides_in_feedback_until_recovery():
    rng = random.Random(5)
    config = FmtcpConfig(coding="real")
    k = 8
    block_bytes = k * config.symbol_size
    data = bytes(rng.randrange(256) for __ in range(block_bytes))
    crc = zlib.crc32(data)
    encoder = BlockEncoder(data, k=k, part_size=config.symbol_size, rng=rng)

    receiver = FmtcpReceiver(Simulator(), config)
    # Feed a full corrupted basis: k mutated symbols, then clean ones
    # until the inconsistency trips.
    while receiver.blocks_quarantined == 0:
        symbol = encoder.next_symbol().integrity_mutate(rng)
        receiver._absorb_group(_group_for(symbol, 0, k, block_bytes, crc))
    assert receiver.feedback().quarantine == {0: 1}
    # A second poisoning bumps the epoch — the sender's k̄ gate needs
    # strictly increasing epochs to accept a reset.
    while receiver.blocks_quarantined == 1:
        symbol = encoder.next_symbol().integrity_mutate(rng)
        receiver._absorb_group(_group_for(symbol, 0, k, block_bytes, crc))
    assert receiver.feedback().quarantine == {0: 2}


def test_sender_k_bar_gate_respects_quarantine_epochs():
    from repro.core.blocks import BlockManager
    from repro.workloads.sources import BulkSource

    config = FmtcpConfig()
    manager = BlockManager(config, BulkSource(total_bytes=config.block_bytes))
    manager.replenish()
    (block,) = manager.pending_blocks

    manager.update_k_bar(block.block_id, 10)
    assert block.k_bar == 10
    # Same epoch: monotone max (stale smaller reports ignored).
    manager.update_k_bar(block.block_id, 4)
    assert block.k_bar == 10
    # Newer epoch (quarantine happened): overwrite downward.
    manager.update_k_bar(block.block_id, 0, epoch=1)
    assert block.k_bar == 0
    assert block.quarantine_epoch == 1
    manager.update_k_bar(block.block_id, 3, epoch=1)
    assert block.k_bar == 3
    # Older epoch: ignored entirely.
    manager.update_k_bar(block.block_id, 12, epoch=0)
    assert block.k_bar == 3
