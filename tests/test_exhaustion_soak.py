"""Exhaustion soak: both protocols through every resource preset, many seeds.

Every run must satisfy the bounded-operation invariants checked by
:func:`repro.robustness.run_exhaustion`:

1. peak receiver occupancy never exceeds the budgeted unit count (the
   flow-control licence actually held);
2. exactly-once, in-order delivery;
3. no deadlock — the transfer completes or the watchdog fails it
   cleanly *with* a structured diagnosis;
4. scenarios that promise completion complete, and the unrecoverable
   one (application stopped reading) must *not* quietly succeed;
5. no wedged RTO timers, and the event queue drains after completion.

Seeded and fully deterministic: a failure reproduces exactly from the
seed named in the assertion message. Set ``REPRO_FLIGHT_DIR`` for a
flight-recorder dump (plus the watchdog post-mortem) of every failing
run — CI uploads them as artifacts.
"""

import os

import pytest

from repro.robustness import EXHAUSTION_SCENARIOS, run_exhaustion

SOAK_SEEDS = range(1, 31)
FLIGHT_DIR = os.environ.get("REPRO_FLIGHT_DIR") or None


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
@pytest.mark.parametrize("name", sorted(EXHAUSTION_SCENARIOS))
def test_exhaustion_soak_presets(protocol, name):
    """30 seeds per preset per protocol, zero violations."""
    failures = []
    for seed in SOAK_SEEDS:
        report = run_exhaustion(
            protocol,
            EXHAUSTION_SCENARIOS[name](),
            seed=seed,
            flight_dump_dir=FLIGHT_DIR,
        )
        if not report.ok:
            detail = f"seed {seed}: {report.violations}"
            if report.flight_dump_path:
                detail += f" [flight dump: {report.flight_dump_path}]"
            failures.append(detail)
    assert not failures, (
        f"{name}/{protocol} exhaustion violations:\n" + "\n".join(failures)
    )


def test_exhaustion_report_shape():
    report = run_exhaustion(
        "fmtcp", EXHAUSTION_SCENARIOS["tiny_receive_buffer"]()
    )
    assert report.protocol == "fmtcp"
    assert report.scenario_name == "tiny_receive_buffer"
    assert report.completed and report.completion_time_s is not None
    assert not report.watchdog_failed
    assert 0 < report.peak_occupancy <= report.budget_units
    assert report.memory_peaks["recv_occupancy"] == report.peak_occupancy
    assert report.flow["enabled"]
    assert report.ok and not report.violations


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
def test_slow_drain_fails_cleanly_with_diagnosis(protocol):
    """An app that stops reading ends in a watchdog failure, not a hang."""
    report = run_exhaustion(
        protocol, EXHAUSTION_SCENARIOS["slow_drain_receiver"]()
    )
    assert report.ok, report.violations
    assert not report.completed
    assert report.watchdog_failed
    assert report.watchdog_escalation == 3  # shed -> boost -> fail
    diagnosis = report.diagnosis
    assert diagnosis is not None
    assert diagnosis["delivered_bytes"] == report.delivered_bytes
    assert diagnosis["memory"]["recv_occupancy"] > 0
    assert diagnosis["flow"]["enabled"]
    assert diagnosis["subflows"], "diagnosis must describe the subflows"


def test_watchdog_post_mortem_dump(tmp_path):
    """A clean failure with a flight dir leaves a post-mortem JSONL."""
    from repro.sim.tracefile import read_trace_file

    report = run_exhaustion(
        "mptcp",
        EXHAUSTION_SCENARIOS["slow_drain_receiver"](),
        flight_dump_dir=str(tmp_path),
    )
    assert report.ok, report.violations
    assert report.watchdog_dump_path is not None
    records = read_trace_file(report.watchdog_dump_path)
    assert records[0]["kind"] == "flight.meta"
    assert records[0]["reason"] == "watchdog_failed"
    kinds = {record["kind"] for record in records}
    assert "watchdog.failed" in kinds


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        run_exhaustion("sctp", EXHAUSTION_SCENARIOS["tiny_receive_buffer"]())
