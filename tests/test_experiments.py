"""Tests for the experiment harness (runner, figure runners, ablations)."""

import pytest

from repro.core.config import FmtcpConfig
from repro.experiments.ablations import (
    ablate_allocation,
    ablate_block_size,
    ablate_congestion_coupling,
    ablate_delta_hat,
    ablate_mptcp_scheduler,
)
from repro.experiments.figures import (
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_table1_suite,
)
from repro.experiments.runner import default_mptcp_config, run_transfer
from repro.net.topology import PathConfig
from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs

FAST = 4.0  # seconds of simulated time for smoke runs
PATHS = lambda: table1_path_configs(TABLE1_CASES[2])  # noqa: E731


# ----------------------------------------------------------------------
# run_transfer.
# ----------------------------------------------------------------------
def test_run_transfer_fmtcp_smoke():
    result = run_transfer("fmtcp", PATHS(), duration_s=FAST, seed=5)
    assert result.protocol == "fmtcp"
    assert result.summary["total_mbytes"] > 0
    assert result.extras["blocks_decoded"] > 0
    assert len(result.subflow_stats) == 2


def test_run_transfer_mptcp_smoke():
    result = run_transfer("mptcp", PATHS(), duration_s=FAST, seed=5)
    assert result.summary["total_mbytes"] > 0
    assert "chunks_retransmitted" in result.extras


def test_run_transfer_unknown_protocol():
    with pytest.raises(ValueError):
        run_transfer("sctp", PATHS(), duration_s=FAST)


def test_run_transfer_deterministic_per_seed():
    a = run_transfer("fmtcp", PATHS(), duration_s=FAST, seed=3)
    b = run_transfer("fmtcp", PATHS(), duration_s=FAST, seed=3)
    assert a.summary == b.summary
    assert a.block_delays == b.block_delays


def test_run_transfer_series_collection():
    result = run_transfer(
        "mptcp", PATHS(), duration_s=FAST, seed=5, collect_series=True, bin_width_s=1.0
    )
    assert len(result.goodput_series) == int(FAST)


def test_default_mptcp_config_matches_fmtcp_budget():
    fmtcp = FmtcpConfig()
    mptcp = default_mptcp_config(fmtcp)
    assert mptcp.block_bytes == fmtcp.block_bytes
    budget = fmtcp.block_bytes * fmtcp.max_pending_blocks
    assert mptcp.recv_buffer_chunks == pytest.approx(budget // fmtcp.mss, abs=1)


# ----------------------------------------------------------------------
# Figure runners (tiny durations).
# ----------------------------------------------------------------------
def test_table1_suite_runs_and_caches():
    suite1 = run_table1_suite(duration_s=FAST, seed=5, cases=TABLE1_CASES[:2])
    suite2 = run_table1_suite(duration_s=FAST, seed=5, cases=TABLE1_CASES[:2])
    assert suite1 is suite2  # memoised
    assert set(suite1.results) == {"fmtcp", "mptcp"}
    assert len(suite1.results["fmtcp"]) == 2
    case_result = suite1.case_result("fmtcp", TABLE1_CASES[0].case_id)
    assert case_result.protocol == "fmtcp"


def test_figure3_rows_structure():
    rows = run_figure3(duration_s=FAST, seed=5)
    assert len(rows) == 8
    assert {"case", "fmtcp_goodput_mb", "mptcp_goodput_mb", "ratio"} <= set(rows[0])


def test_figure5_and_6_share_suite_with_fig3():
    rows5 = run_figure5(duration_s=FAST, seed=5)
    rows6 = run_figure6(duration_s=FAST, seed=5)
    assert len(rows5) == len(rows6) == 8
    assert all(row["fmtcp_block_delay_ms"] > 0 for row in rows5)
    assert all(row["fmtcp_jitter_ms"] >= 0 for row in rows6)


def test_figure4_series():
    results = run_figure4(
        0.30, duration_s=30.0, surge_start_s=10.0, surge_end_s=20.0, seed=5,
        bin_width_s=5.0,
    )
    assert set(results) == {"fmtcp", "mptcp"}
    assert len(results["fmtcp"].goodput_series) == 6


def test_figure7_series():
    series = run_figure7(duration_s=FAST, seed=5, max_blocks=100)
    assert set(series) == {"fmtcp", "mptcp"}
    assert len(series["fmtcp"]) <= 100
    assert all(delay > 0 for delay in series["fmtcp"])


# ----------------------------------------------------------------------
# Ablations (smoke).
# ----------------------------------------------------------------------
def test_ablate_allocation_modes():
    results = ablate_allocation(duration_s=FAST, seed=5)
    assert set(results) == {"eat", "greedy", "stopwait"}


def test_ablate_delta_hat():
    results = ablate_delta_hat(deltas=[1e-2, 1e-4], duration_s=FAST, seed=5)
    assert set(results) == {1e-2, 1e-4}
    # Stricter delta sends more redundancy.
    assert (
        results[1e-4].extras["redundancy_ratio"]
        > results[1e-2].extras["redundancy_ratio"]
    )


def test_ablate_block_size():
    results = ablate_block_size(ks=[64, 256], duration_s=FAST, seed=5)
    assert set(results) == {64, 256}


def test_ablate_congestion_coupling():
    results = ablate_congestion_coupling(duration_s=FAST, seed=5)
    assert set(results) == {"reno", "lia"}


def test_ablate_mptcp_scheduler():
    results = ablate_mptcp_scheduler(duration_s=FAST, seed=5)
    assert set(results) == {"minrtt", "roundrobin", "minrtt+reinject", "minrtt+orp"}
