"""Tests for the extension modules: systematic coding, RED queues,
fairness, replication, reporting and trace export."""

import random

import pytest

from repro.core.config import FmtcpConfig
from repro.experiments.fairness import jain_index, run_fairness
from repro.experiments.replication import (
    run_replicated,
    summarise,
    t_quantile,
)
from repro.experiments.reporting import (
    bar_chart,
    rows_to_csv,
    series_plot,
    series_to_csv,
    sparkline,
)
from repro.fountain.codec import BlockDecoder, SystematicBlockEncoder
from repro.net.packet import Packet
from repro.net.queues import RedQueue
from repro.net.topology import PathConfig, build_shared_bottleneck_network
from repro.sim.trace import TraceBus
from repro.sim.tracefile import TraceFileWriter, read_trace_file


# ----------------------------------------------------------------------
# Systematic fountain coding.
# ----------------------------------------------------------------------
def test_systematic_first_k_symbols_are_source_parts():
    data = bytes(range(64))
    encoder = SystematicBlockEncoder(data, k=8, part_size=8, rng=random.Random(0))
    decoder = BlockDecoder(k=8, part_size=8, data_length=64)
    for __ in range(8):
        symbol = encoder.next_symbol()
        assert symbol.degree() == 1
        decoder.add_symbol(symbol)
    assert decoder.is_complete
    assert decoder.decode() == data
    assert decoder.symbols_redundant == 0


def test_systematic_repair_symbols_recover_erasures():
    rng = random.Random(1)
    data = bytes(rng.getrandbits(8) for __ in range(64))
    encoder = SystematicBlockEncoder(data, k=8, part_size=8, rng=rng)
    decoder = BlockDecoder(k=8, part_size=8, data_length=64)
    for index in range(8):  # drop half the systematic symbols
        symbol = encoder.next_symbol()
        if index % 2 == 0:
            decoder.add_symbol(symbol)
    while not decoder.is_complete:
        decoder.add_symbol(encoder.next_symbol())  # coded repair
    assert decoder.decode() == data


def test_systematic_fmtcp_end_to_end():
    from repro.core.connection import FmtcpConnection
    from repro.sim.rng import RngStreams
    from repro.workloads.sources import RandomPayloadSource
    from tests.conftest import make_two_path

    config = FmtcpConfig(coding="real", systematic=True, max_pending_blocks=4)
    source = RandomPayloadSource(total_bytes=3 * config.block_bytes + 123)
    network, paths, trace = make_two_path(loss2=0.2)
    chunks = {}
    connection = FmtcpConnection(
        network.sim, paths, source, config=config, trace=trace,
        rng=RngStreams(5),
        sink=lambda block_id, data: chunks.__setitem__(block_id, data),
    )
    connection.start()
    network.sim.run(until=60.0)
    reassembled = b"".join(chunks[block_id] for block_id in sorted(chunks))
    assert reassembled == bytes(source.transcript)


def test_systematic_requires_real_coding():
    with pytest.raises(ValueError):
        FmtcpConfig(systematic=True, coding="statistical")


# ----------------------------------------------------------------------
# RED queue.
# ----------------------------------------------------------------------
def make_packet():
    return Packet(size=1000, src="a", dst="b", src_port=1, dst_port=2)


def test_red_accepts_below_min_threshold():
    queue = RedQueue(capacity=50, min_threshold=5, max_threshold=15)
    for __ in range(4):
        assert queue.try_enqueue(make_packet())
    assert queue.early_drops == 0


def test_red_drops_probabilistically_between_thresholds():
    queue = RedQueue(
        capacity=200, min_threshold=5, max_threshold=15,
        max_probability=0.5, weight=1.0, rng=random.Random(0),
    )
    outcomes = []
    for __ in range(200):
        outcomes.append(queue.try_enqueue(make_packet()))
        if len(queue) > 10:
            queue.dequeue()  # hold occupancy in the RED band
    assert queue.early_drops > 0
    assert any(outcomes)


def test_red_force_drops_above_max_threshold():
    queue = RedQueue(
        capacity=100, min_threshold=2, max_threshold=5, weight=1.0,
        rng=random.Random(0),
    )
    drops_before = queue.drops
    for __ in range(30):
        queue.try_enqueue(make_packet())
    # Average sits above max_threshold quickly -> every arrival dropped.
    assert queue.drops > drops_before
    assert len(queue) <= 7


def test_red_average_tracks_occupancy():
    queue = RedQueue(capacity=100, min_threshold=20, max_threshold=60, weight=0.5)
    for __ in range(10):
        queue.try_enqueue(make_packet())
    assert 0.0 < queue.average_queue <= 10.0


def test_red_validation():
    with pytest.raises(ValueError):
        RedQueue(capacity=10, min_threshold=8, max_threshold=8)
    with pytest.raises(ValueError):
        RedQueue(max_probability=0.0)
    with pytest.raises(ValueError):
        RedQueue(weight=2.0)


def test_red_usable_as_path_queue():
    config = PathConfig(
        bandwidth_bps=8e6,
        delay_s=0.01,
        queue_factory=lambda: RedQueue(capacity=50),
    )
    from repro.net.topology import build_two_path_network

    network, paths = build_two_path_network([config])
    assert isinstance(paths[0].forward_links[0].queue, RedQueue)


# ----------------------------------------------------------------------
# Shared bottleneck + fairness.
# ----------------------------------------------------------------------
def test_shared_bottleneck_topology_shapes():
    network, paths = build_shared_bottleneck_network(3)
    assert len(paths) == 3
    shared = {path.forward_links[-1] for path in paths}
    assert len(shared) == 1  # all paths end on the same bottleneck link


def test_jain_index_values():
    assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
    assert jain_index([1.0, 0.0]) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        jain_index([])


def test_tcp_flows_share_fairly():
    result = run_fairness(protocol_under_test="tcp", n_competitors=2, duration_s=15.0)
    assert result.jain > 0.95


def test_fmtcp_is_tcp_friendly():
    """Paper Section III-A: FMTCP must not out-compete TCP on a shared
    bottleneck (it inherits per-subflow Reno; coding is not a rate boost)."""
    result = run_fairness(
        protocol_under_test="fmtcp", n_competitors=3, duration_s=20.0
    )
    assert result.jain > 0.95
    assert 0.7 < result.test_flow_share < 1.2


def test_fairness_validation():
    with pytest.raises(ValueError):
        run_fairness(protocol_under_test="sctp")


# ----------------------------------------------------------------------
# Replication.
# ----------------------------------------------------------------------
def test_summarise_statistics():
    summary = summarise([1.0, 2.0, 3.0])
    assert summary.mean == pytest.approx(2.0)
    assert summary.stdev == pytest.approx(1.0)
    assert summary.ci95 == pytest.approx(4.303 / 3**0.5, rel=1e-3)
    assert summary.n == 3


def test_summarise_single_value():
    summary = summarise([5.0])
    assert summary.mean == 5.0 and summary.ci95 == 0.0


def test_t_quantile_bounds():
    assert t_quantile(2) == pytest.approx(12.706)
    assert t_quantile(100) == pytest.approx(1.96)
    with pytest.raises(ValueError):
        t_quantile(1)


def test_run_replicated_aggregates_seeds():
    def factory():
        return [
            PathConfig(bandwidth_bps=8e6, delay_s=0.01, loss_rate=0.0),
            PathConfig(bandwidth_bps=8e6, delay_s=0.01, loss_rate=0.1),
        ]

    result = run_replicated("fmtcp", factory, duration_s=4.0, seeds=(1, 2, 3))
    assert len(result.runs) == 3
    goodput = result["goodput_mbytes_per_s"]
    assert goodput.n == 3
    assert goodput.mean > 0
    assert goodput.stdev >= 0


def test_run_replicated_requires_seeds():
    with pytest.raises(ValueError):
        run_replicated("fmtcp", lambda: [PathConfig()], duration_s=1.0, seeds=())


# ----------------------------------------------------------------------
# Reporting.
# ----------------------------------------------------------------------
def test_sparkline_levels():
    line = sparkline([0.0, 0.5, 1.0])
    assert len(line) == 3
    assert line[0] == "▁" and line[-1] == "█"


def test_sparkline_flat_series():
    assert sparkline([0.0, 0.0]) == "▁▁"
    assert sparkline([]) == ""


def test_bar_chart_alignment_and_scale():
    lines = bar_chart([("a", 1.0), ("bb", 2.0)], width=10)
    assert len(lines) == 2
    assert lines[1].count("█") == 10  # peak fills the width
    assert lines[0].count("█") == 5


def test_series_plot_contains_all_series():
    lines = series_plot(
        {"x": [(0.0, 1.0), (10.0, 2.0)], "y": [(5.0, 0.5)]}, height=6, width=30
    )
    body = "\n".join(lines)
    assert "o" in body and "x=x" in body.replace(" ", "").lower() or "o=x" in body
    assert len(lines) >= 6


def test_rows_to_csv_roundtrip():
    rows = [{"case": 1, "value": 2.5}, {"case": 2, "value": 3.5}]
    text = rows_to_csv(rows)
    lines = text.strip().splitlines()
    assert lines[0] == "case,value"
    assert lines[1] == "1,2.5"
    assert rows_to_csv([]) == ""


def test_series_to_csv_long_format():
    text = series_to_csv({"fmtcp": [(0.5, 1.25)]})
    assert "series,time_s,value" in text
    assert "fmtcp,0.5,1.25" in text


# ----------------------------------------------------------------------
# Trace export.
# ----------------------------------------------------------------------
def test_trace_file_writer_roundtrip(tmp_path):
    trace = TraceBus()
    path = tmp_path / "trace.jsonl"
    with TraceFileWriter(trace, str(path), kinds=["conn.delivered"]):
        trace.emit(1.0, "conn.delivered", bytes=100)
        trace.emit(2.0, "other.kind", x=1)  # filtered out
        trace.emit(3.0, "conn.delivered", bytes=200)
    records = read_trace_file(str(path))
    assert len(records) == 2
    assert records[0] == {"t": 1.0, "kind": "conn.delivered", "bytes": 100}


def test_trace_file_writer_wildcard_and_complex_fields(tmp_path):
    trace = TraceBus()
    path = tmp_path / "trace.jsonl"
    writer = TraceFileWriter(trace, str(path))
    trace.emit(0.0, "k", nested={"a": (1, 2)}, obj=object())
    writer.close()
    records = read_trace_file(str(path))
    assert records[0]["nested"] == {"a": [1, 2]}
    assert isinstance(records[0]["obj"], str)
    # After close, further emissions are not recorded.
    trace.emit(1.0, "k")
    assert len(read_trace_file(str(path))) == 1


def test_trace_file_writer_counts(tmp_path):
    trace = TraceBus()
    with TraceFileWriter(trace, str(tmp_path / "t.jsonl"), kinds=["a"]) as writer:
        for __ in range(5):
            trace.emit(0.0, "a")
        assert writer.records_written == 5
