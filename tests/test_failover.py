"""Dead-path failover: suspect detection, probing, exclusion, reinjection.

A path that silently dies (``link.set_down``) stops producing ACKs, so
the only signal is consecutive RTO expiries. After
``failover_rto_threshold`` of them a subflow is *potentially failed*:
FMTCP's allocator stops counting on it and it degrades to one probe per
backed-off RTO; MPTCP additionally reinjects the dead subflow's unacked
chunks onto live ones. The first ACK rehabilitates the path.
"""

import pytest

from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.faults import FaultEvent, FaultScenario
from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.net.topology import PathConfig, build_two_path_network
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.workloads.sources import BulkSource, RandomPayloadSource


def build(protocol, *, fmtcp_config=None, mptcp_config=None, source=None,
          sink=None, seed=2):
    trace = TraceBus()
    configs = [
        PathConfig(bandwidth_bps=4e6, delay_s=0.02),
        PathConfig(bandwidth_bps=4e6, delay_s=0.02),
    ]
    network, paths = build_two_path_network(configs, rng=RngStreams(seed), trace=trace)
    source = source if source is not None else BulkSource()
    if protocol == "fmtcp":
        connection = FmtcpConnection(
            network.sim, paths, source, config=fmtcp_config or FmtcpConfig(),
            trace=trace, rng=RngStreams(seed), sink=sink,
        )
    else:
        connection = MptcpConnection(
            network.sim, paths, source, config=mptcp_config or MptcpConfig(),
            trace=trace, sink=sink,
        )
    return network, paths, connection, trace


def kill_path(sim, paths, index, at, until=None):
    events = [FaultEvent(at, "down", index)]
    if until is not None:
        events.append(FaultEvent(until, "up", index))
    FaultScenario("kill", events).apply(sim, paths)


# ----------------------------------------------------------------------
# Config knobs.
# ----------------------------------------------------------------------
def test_failover_threshold_validation():
    with pytest.raises(ValueError):
        FmtcpConfig(failover_rto_threshold=0)
    with pytest.raises(ValueError):
        MptcpConfig(failover_rto_threshold=0)
    # None disables failover entirely.
    assert FmtcpConfig(failover_rto_threshold=None).failover_rto_threshold is None


# ----------------------------------------------------------------------
# Suspect detection and probing (both stacks share the Subflow logic).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
def test_dead_path_becomes_suspect(protocol):
    network, paths, connection, trace = build(protocol)
    suspects = []
    trace.subscribe("subflow.suspect", suspects.append)
    kill_path(network.sim, paths, 1, at=5.0)
    connection.start()
    network.sim.run(until=25.0)
    dead = connection.subflows[1]
    assert dead.potentially_failed
    assert dead.consecutive_timeouts >= 3
    assert suspects and suspects[0]["subflow"] == 1
    # The live path kept the transfer going the whole time.
    assert connection.delivered_bytes > 1_000_000


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
def test_suspect_path_capped_at_one_probe_in_flight(protocol):
    network, paths, connection, __ = build(protocol)
    kill_path(network.sim, paths, 1, at=5.0)
    connection.start()
    dead = connection.subflows[1]
    over_cap = []

    def check():
        if dead.potentially_failed and dead.in_flight > 1:
            over_cap.append((network.sim.now, dead.in_flight))
        network.sim.schedule(0.1, check)

    network.sim.schedule(10.0, check)
    network.sim.run(until=30.0)
    assert dead.potentially_failed
    assert not over_cap


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
def test_path_recovers_when_link_revives(protocol):
    network, paths, connection, trace = build(protocol)
    recoveries = []
    trace.subscribe("subflow.recovered", recoveries.append)
    kill_path(network.sim, paths, 1, at=5.0, until=20.0)
    connection.start()
    network.sim.run(until=20.0)
    assert connection.subflows[1].potentially_failed
    network.sim.run(until=45.0)
    revived = connection.subflows[1]
    assert not revived.potentially_failed
    assert revived.consecutive_timeouts == 0
    assert recoveries and recoveries[0]["subflow"] == 1
    # The revived path is carrying real traffic again.
    assert revived.last_ack_at is not None and revived.last_ack_at > 20.0


def test_failover_disabled_never_flags_suspect():
    network, paths, connection, __ = build(
        "fmtcp", fmtcp_config=FmtcpConfig(failover_rto_threshold=None)
    )
    kill_path(network.sim, paths, 1, at=5.0)
    connection.start()
    network.sim.run(until=25.0)
    assert not connection.subflows[1].potentially_failed


# ----------------------------------------------------------------------
# FMTCP: allocator exclusion + failover probes.
# ----------------------------------------------------------------------
def test_fmtcp_allocator_excludes_suspect_path():
    network, paths, connection, __ = build("fmtcp")
    kill_path(network.sim, paths, 1, at=5.0)
    connection.start()
    network.sim.run(until=25.0)
    sender = connection.sender
    assert sender.suspect_events >= 1
    assert sender.failover_probes_sent >= 1
    live_estimates = sender.path_estimates()
    assert [estimate.subflow_id for estimate in live_estimates] == [0]
    everything = sender.path_estimates(include_suspect=True)
    assert [estimate.subflow_id for estimate in everything] == [0, 1]


def test_fmtcp_goodput_survives_path_death():
    """With failover, the dead path must not drag down the live one."""
    network, paths, connection, trace = build("fmtcp")
    from repro.metrics.collectors import MetricsSuite

    metrics = MetricsSuite(trace, bin_width_s=1.0)
    kill_path(network.sim, paths, 1, at=5.0)
    connection.start()
    network.sim.run(until=30.0)
    series = dict(metrics.goodput.series(30.0))
    # Steady single-path delivery well after the death.
    late = [rate for t, rate in series.items() if 20.0 <= t < 30.0]
    assert min(late) > 0.2


# ----------------------------------------------------------------------
# MPTCP: reinjection of stranded chunks.
# ----------------------------------------------------------------------
def test_mptcp_reinjects_unacked_chunks_from_dead_subflow():
    network, paths, connection, __ = build("mptcp")
    kill_path(network.sim, paths, 1, at=5.0)
    connection.start()
    network.sim.run(until=25.0)
    assert connection.subflows[1].potentially_failed
    assert connection.chunks_reinjected >= 1
    assert connection.failover_events >= 1


def test_mptcp_probe_duplicates_are_absorbed_exactly_once():
    """Failover probes duplicate the head-of-line chunk; the receiver
    must still deliver a byte-exact, exactly-once stream."""
    source = RandomPayloadSource(total_bytes=600_000)
    received = bytearray()
    network, paths, connection, __ = build(
        "mptcp", source=source,
        sink=lambda chunk: received.extend(chunk.payload_bytes),
    )
    kill_path(network.sim, paths, 1, at=2.0, until=12.0)
    connection.start()
    network.sim.run(until=40.0)
    assert bytes(received) == bytes(source.transcript)


def test_mptcp_transfer_completes_despite_permanent_path_death():
    source = RandomPayloadSource(total_bytes=600_000)
    received = bytearray()
    network, paths, connection, __ = build(
        "mptcp", source=source,
        sink=lambda chunk: received.extend(chunk.payload_bytes),
    )
    kill_path(network.sim, paths, 1, at=2.0)  # never comes back
    connection.start()
    network.sim.run(until=60.0)
    assert bytes(received) == bytes(source.transcript)
