"""Failure injection: abrupt path death, blackouts, and recovery.

The paper's Fig. 4 surges loss to 25-35 %; these tests push further —
total path blackout and back — and assert both protocols stay live,
deliver exactly once, and recover, with FMTCP degrading the least.
"""

import pytest

from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.metrics.collectors import MetricsSuite
from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.net.loss import ScheduledLoss
from repro.net.topology import PathConfig, build_two_path_network
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.workloads.sources import BulkSource, RandomPayloadSource


def blackout_configs(start=10.0, end=20.0, base=0.0):
    """Path 2 goes totally dark during [start, end)."""
    return [
        PathConfig(bandwidth_bps=4e6, delay_s=0.050, loss_rate=base),
        PathConfig(
            bandwidth_bps=4e6,
            delay_s=0.050,
            loss_model=ScheduledLoss([(0.0, base), (start, 0.99), (end, base)]),
        ),
    ]


def run(protocol, configs, duration=30.0, seed=3, source=None, sink=None,
        fmtcp_config=None):
    trace = TraceBus()
    network, paths = build_two_path_network(
        configs, rng=RngStreams(seed), trace=trace
    )
    metrics = MetricsSuite(trace, bin_width_s=1.0)
    source = source if source is not None else BulkSource()
    if protocol == "fmtcp":
        connection = FmtcpConnection(
            network.sim, paths, source,
            config=fmtcp_config or FmtcpConfig(),
            trace=trace, rng=RngStreams(seed), sink=sink,
        )
    else:
        connection = MptcpConnection(
            network.sim, paths, source, config=MptcpConfig(), trace=trace,
            sink=sink,
        )
    connection.start()
    network.sim.run(until=duration)
    return connection, metrics


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
def test_connection_survives_total_blackout(protocol):
    """Path 2 dead during [10, 20)s; the connection must keep moving on
    path 1 and re-engage path 2 within ~10 s of recovery (FMTCP's probing
    plus loss-estimate aging; MPTCP's retransmission obligation)."""
    connection, metrics = run(protocol, blackout_configs(), duration=45.0)
    series = dict(metrics.goodput.series(45.0))
    during = sum(rate for t, rate in series.items() if 12.0 <= t < 20.0) / 8.0
    after = sum(rate for t, rate in series.items() if 35.0 <= t < 45.0) / 10.0
    if protocol == "fmtcp":
        # FMTCP never stalls: the clean path keeps delivering throughout.
        assert during > 0.2
    # Both protocols return to (near) two-path rates once the path heals.
    assert after > 1.3 * max(during, 0.01)


def test_fmtcp_probes_dead_path():
    connection, __ = run("fmtcp", blackout_configs(), duration=30.0)
    assert connection.sender.probes_sent >= 5


def test_fmtcp_blackout_delivery_is_exact():
    config = FmtcpConfig(coding="real", max_pending_blocks=4)
    source = RandomPayloadSource(total_bytes=8 * config.block_bytes)
    chunks = {}
    connection, __ = run(
        "fmtcp",
        blackout_configs(start=2.0, end=8.0),
        duration=60.0,
        source=source,
        sink=lambda block_id, data: chunks.__setitem__(block_id, data),
        fmtcp_config=config,
    )
    reassembled = b"".join(chunks[block_id] for block_id in sorted(chunks))
    assert reassembled == bytes(source.transcript)


def test_mptcp_blackout_delivery_is_exact():
    source = RandomPayloadSource(total_bytes=300_000)
    received = bytearray()
    connection, __ = run(
        "mptcp",
        blackout_configs(start=2.0, end=8.0),
        duration=60.0,
        source=source,
        sink=lambda chunk: received.extend(chunk.payload_bytes),
    )
    assert bytes(received) == bytes(source.transcript)


def test_fmtcp_outdelivers_mptcp_through_blackout():
    fmtcp_conn, fmtcp_metrics = run("fmtcp", blackout_configs())
    mptcp_conn, mptcp_metrics = run("mptcp", blackout_configs())
    assert fmtcp_metrics.goodput.total_bytes > mptcp_metrics.goodput.total_bytes


def test_simultaneous_double_blackout_then_recovery():
    """Both paths dark for a window: nothing delivers, then both recover
    (RTO back-off must not wedge either protocol)."""
    def configs():
        dark = ScheduledLoss([(0.0, 0.0), (10.0, 0.99), (14.0, 0.0)])
        dark2 = ScheduledLoss([(0.0, 0.0), (10.0, 0.99), (14.0, 0.0)])
        return [
            PathConfig(bandwidth_bps=4e6, delay_s=0.050, loss_model=dark),
            PathConfig(bandwidth_bps=4e6, delay_s=0.050, loss_model=dark2),
        ]

    for protocol in ("fmtcp", "mptcp"):
        connection, metrics = run(protocol, configs(), duration=40.0)
        series = dict(metrics.goodput.series(40.0))
        tail = sum(rate for t, rate in series.items() if 25.0 <= t < 40.0)
        assert tail > 0.0, f"{protocol} never recovered from the double blackout"


def test_fmtcp_timers_quiet_after_finite_transfer():
    """After a finite transfer completes, the event queue drains — no
    timer leaks keeping the simulation alive forever. Exact accounting:
    anything still pending must be a cancelled timer tombstone, and after
    close() + drain_cancelled() the heap is empty."""
    config = FmtcpConfig(max_pending_blocks=4)
    source = BulkSource(total_bytes=6 * config.block_bytes)
    trace = TraceBus()
    network, paths = build_two_path_network(
        [PathConfig(bandwidth_bps=4e6, delay_s=0.02)],
        rng=RngStreams(1), trace=trace,
    )
    connection = FmtcpConnection(
        network.sim, paths, source, config=config, trace=trace, rng=RngStreams(1)
    )
    connection.start()
    network.sim.run(until=30.0)
    assert connection.delivered_blocks == 6
    # Every live timer belongs to the connection; closing it cancels them.
    connection.close()
    network.sim.drain_cancelled()
    assert network.sim.pending_events == 0
    # And with nothing pending, another run() is an immediate no-op.
    events_before = network.sim.events_processed
    network.sim.run()
    assert network.sim.events_processed == events_before
