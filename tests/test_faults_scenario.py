"""Unit tests for the fault-injection subsystem: link mutations,
reordering models, fault timelines, the injector, overlap diagnosis and
subflow-lifecycle (churn) events."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    CHURN_KINDS,
    MOBILITY_SCENARIOS,
    SCENARIOS,
    FaultEvent,
    FaultScenario,
    resolve_scenario,
)
from repro.net.link import Link
from repro.net.loss import BernoulliLoss, NoLoss
from repro.net.packet import Packet
from repro.net.reorder import NoReordering, UniformReordering
from repro.net.topology import PathConfig, build_two_path_network
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus


class RecordingNode:
    """Sink node that records packet arrival order and times."""

    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def receive(self, packet):
        self.received.append((self.sim.now, packet))


def make_link(sim, trace=None, **kwargs):
    node = RecordingNode(sim)
    defaults = dict(bandwidth_bps=8e6, delay_s=0.01)
    defaults.update(kwargs)
    link = Link(sim, "test-link", node, trace=trace, **defaults)
    return link, node


def packet(seq=0, size=1000):
    return Packet(size=size, src="a", dst="b", src_port=1, dst_port=2, payload=seq)


# ----------------------------------------------------------------------
# Link runtime mutations.
# ----------------------------------------------------------------------
def test_link_down_drops_everything(sim):
    trace = TraceBus()
    events = []
    trace.subscribe("link.down", events.append)
    trace.subscribe("link.up", events.append)
    link, node = make_link(sim, trace=trace)
    link.set_down(True)
    assert link.is_down
    for seq in range(5):
        link.send(packet(seq))
    sim.run()
    assert node.received == []
    assert link.packets_dropped_down == 5
    link.set_down(False)
    link.send(packet(99))
    sim.run()
    assert len(node.received) == 1
    assert [record.kind for record in events] == ["link.down", "link.up"]


def test_link_down_mid_serialisation_drops_at_wire_exit(sim):
    link, node = make_link(sim, bandwidth_bps=8e3)  # 1 s serialisation
    link.send(packet(0, size=1000))
    sim.schedule(0.5, link.set_down, True)
    sim.run()
    # The packet was still serialising when the link died: dropped.
    assert node.received == []
    assert link.packets_dropped_down == 1


def test_link_down_packet_already_propagating_still_arrives(sim):
    link, node = make_link(sim, bandwidth_bps=8e8, delay_s=1.0)
    link.send(packet(0))
    sim.schedule(0.5, link.set_down, True)  # after serialisation, mid-flight
    sim.run()
    assert len(node.received) == 1


def test_link_set_bandwidth_and_delay_take_effect(sim):
    link, node = make_link(sim, bandwidth_bps=8e6, delay_s=0.01)
    link.set_bandwidth(8e3)  # 1 s per 1000 B packet
    link.set_delay(2.0)
    link.send(packet(0))
    sim.run()
    assert node.received[0][0] == pytest.approx(3.0)


def test_link_mutation_validation(sim):
    link, __ = make_link(sim)
    with pytest.raises(ValueError):
        link.set_bandwidth(0.0)
    with pytest.raises(ValueError):
        link.set_delay(-0.1)


def test_link_set_loss_model_none_restores_lossless(sim):
    link, node = make_link(sim, loss_model=BernoulliLoss(0.9))
    link.set_loss_model(None)
    assert isinstance(link.loss_model, NoLoss)
    for seq in range(20):
        link.send(packet(seq))
    sim.run()
    assert len(node.received) == 20


def test_link_fallback_rngs_are_independent():
    """Two links built without an explicit rng must not share a stream
    (a shared Random(0) would give them identical drop sequences)."""
    from repro.sim.engine import Simulator

    sim = Simulator()
    link_a, __ = make_link(sim)
    link_b = Link(sim, "other-link", RecordingNode(sim), bandwidth_bps=8e6,
                  delay_s=0.01)
    draws_a = [link_a.rng.random() for __ in range(50)]
    draws_b = [link_b.rng.random() for __ in range(50)]
    assert draws_a != draws_b


# ----------------------------------------------------------------------
# Reordering models.
# ----------------------------------------------------------------------
def test_uniform_reordering_validation():
    with pytest.raises(ValueError):
        UniformReordering(-0.1)
    with pytest.raises(ValueError):
        UniformReordering(1.5)
    with pytest.raises(ValueError):
        UniformReordering(0.5, min_extra_s=0.2, max_extra_s=0.1)


def test_no_reordering_adds_nothing():
    assert NoReordering().extra_delay(0.0, random.Random(0)) == 0.0


def test_uniform_reordering_counts_and_bounds():
    model = UniformReordering(1.0, min_extra_s=0.05, max_extra_s=0.2)
    rng = random.Random(3)
    delays = [model.extra_delay(0.0, rng) for __ in range(200)]
    assert model.packets_reordered == 200
    assert all(0.05 <= delay <= 0.2 for delay in delays)


def test_reordering_model_reorders_packets_on_a_link(sim):
    link, node = make_link(
        sim,
        bandwidth_bps=8e8,  # negligible serialisation
        delay_s=0.001,
        reordering_model=UniformReordering(0.5, min_extra_s=0.05, max_extra_s=0.1),
    )
    for seq in range(100):
        sim.schedule(seq * 1e-4, link.send, packet(seq))
    sim.run()
    arrival_order = [pkt.payload for __, pkt in node.received]
    assert len(arrival_order) == 100
    assert arrival_order != sorted(arrival_order)


# ----------------------------------------------------------------------
# FaultEvent / FaultScenario.
# ----------------------------------------------------------------------
def test_fault_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(-1.0, "down", 0)
    with pytest.raises(ValueError):
        FaultEvent(1.0, "meteor", 0)
    with pytest.raises(ValueError):
        FaultEvent(1.0, "down", -1)
    with pytest.raises(ValueError):
        FaultEvent(1.0, "down", 0, direction="sideways")


def test_fault_event_value_validation():
    """Out-of-range (and NaN/inf) link-mutation values fail at scenario
    build time with a diagnostic, not mid-run inside the injector."""
    nan, inf = float("nan"), float("inf")
    for bad in (0.0, -1.0, nan, inf):
        with pytest.raises(ValueError, match="bandwidth factor"):
            FaultEvent(1.0, "bandwidth", 0, bad)
    for bad in (-0.5, nan, inf):
        with pytest.raises(ValueError, match="delay factor"):
            FaultEvent(1.0, "delay", 0, bad)
    for bad in (-0.1, 1.0, 1.5, nan):
        with pytest.raises(ValueError, match=r"loss rate"):
            FaultEvent(1.0, "loss", 0, bad)
    with pytest.raises(ValueError, match="queue capacity"):
        FaultEvent(1.0, "queue", 0, 0)
    # In-range values still build.
    FaultEvent(1.0, "bandwidth", 0, 0.05)
    FaultEvent(1.0, "delay", 0, 0.0)
    FaultEvent(1.0, "loss", 0, 0.0)
    FaultEvent(1.0, "loss", 0, None)
    FaultEvent(1.0, "queue", 0, 1)


def test_trace_event_validation():
    """A trace event resolves (and so validates) its spec at build time."""
    event = FaultEvent(2.0, "trace", 1, "gprs:1")
    assert event.kind == "trace"
    with pytest.raises(ValueError, match="unknown trace spec"):
        FaultEvent(2.0, "trace", 1, "warp_drive")
    FaultEvent(18.0, "trace", 1, None)  # restore event


def test_scenario_sorts_events_and_exposes_window():
    scenario = FaultScenario(
        "x",
        [FaultEvent(9.0, "up", 0), FaultEvent(4.0, "down", 0)],
    )
    assert [event.kind for event in scenario.events] == ["down", "up"]
    assert scenario.fault_start == 4.0
    assert scenario.heal_time == 9.0


def test_scenario_rejects_out_of_range_path():
    with pytest.raises(ValueError):
        FaultScenario("x", [FaultEvent(1.0, "down", 2)], n_paths=2)


def test_named_scenarios_and_unknown_name():
    for name in SCENARIOS:
        scenario = FaultScenario.named(name)
        assert scenario.name == name
        assert scenario.events
    with pytest.raises(ValueError):
        FaultScenario.named("no_such_scenario")


def test_random_scenario_is_deterministic_per_seed():
    first = FaultScenario.random(42)
    second = FaultScenario.random(42)
    other = FaultScenario.random(43)
    assert first.events == second.events
    assert first.events != other.events


def test_random_scenario_always_heals_in_window():
    for seed in range(20):
        scenario = FaultScenario.random(seed, heal_time=18.0)
        assert scenario.events
        assert scenario.heal_time <= 18.0
        # Every fault kind that sets state also has a restoring event at
        # or after it; the latest event must be a restore.
        last = scenario.events[-1]
        restores = (
            last.kind == "up"
            or (last.kind in ("bandwidth", "delay") and last.value == 1.0)
            or (last.kind in ("loss", "reorder", "queue") and last.value is None)
        )
        assert restores, f"seed {seed}: last event {last} does not heal"


def test_resolve_scenario_specs():
    assert resolve_scenario("link_flap").name == "link_flap"
    assert resolve_scenario("random:9").name == "random:9"
    with pytest.raises(ValueError):
        resolve_scenario("bogus")


def test_trace_presets_registered_and_resolvable(tmp_path):
    from repro.faults import TRACE_SCENARIOS

    for name in TRACE_SCENARIOS:
        scenario = FaultScenario.named(name)
        assert scenario.name == name
        assert scenario.has_trace
        assert not scenario.has_churn
        assert not scenario.has_corruption
        assert not scenario.has_endpoint_faults
        # Every preset restores: the last event clears the trace.
        last = scenario.events[-1]
        assert last.kind == "trace" and last.value is None
    # trace:PATH wraps an arbitrary CSV in the canonical window.
    from repro.traces import gprs_trace

    path = tmp_path / "drive.csv"
    path.write_text(gprs_trace(seed=4).to_csv())
    scenario = resolve_scenario(f"trace:{path}")
    assert scenario.has_trace
    with pytest.raises(ValueError, match="cannot read"):
        resolve_scenario(f"trace:{tmp_path / 'missing.csv'}")


# ----------------------------------------------------------------------
# The injector against a live topology.
# ----------------------------------------------------------------------
def build_network(n_paths=2):
    configs = [
        PathConfig(bandwidth_bps=4e6, delay_s=0.02) for __ in range(n_paths)
    ]
    return build_two_path_network(configs, rng=RngStreams(5), trace=TraceBus())


def test_injector_applies_and_restores_bandwidth():
    network, paths = build_network()
    baseline = paths[1].forward_links[0].bandwidth_bps
    scenario = FaultScenario(
        "bw",
        [FaultEvent(1.0, "bandwidth", 1, 0.1), FaultEvent(2.0, "bandwidth", 1, 1.0)],
    )
    injector = scenario.apply(network.sim, paths)
    network.sim.run(until=1.5)
    assert paths[1].forward_links[0].bandwidth_bps == pytest.approx(baseline * 0.1)
    # Path 0 untouched.
    assert paths[0].forward_links[0].bandwidth_bps == pytest.approx(baseline)
    network.sim.run(until=3.0)
    assert paths[1].forward_links[0].bandwidth_bps == pytest.approx(baseline)
    assert len(injector.applied) == 2


def test_injector_restores_loss_reorder_and_queue_baselines():
    network, paths = build_network()
    link = paths[1].forward_links[0]
    base_loss = link.loss_model
    base_capacity = link.queue.capacity
    scenario = FaultScenario(
        "mix",
        [
            FaultEvent(1.0, "loss", 1, 0.5),
            FaultEvent(1.0, "reorder", 1, (0.3, 0.1)),
            FaultEvent(1.0, "queue", 1, 2),
            FaultEvent(2.0, "loss", 1, None),
            FaultEvent(2.0, "reorder", 1, None),
            FaultEvent(2.0, "queue", 1, None),
        ],
    )
    scenario.apply(network.sim, paths)
    network.sim.run(until=1.5)
    assert isinstance(link.loss_model, BernoulliLoss)
    assert isinstance(link.reordering_model, UniformReordering)
    assert link.queue.capacity == 2
    network.sim.run(until=2.5)
    assert link.loss_model is base_loss
    assert link.reordering_model is None
    assert link.queue.capacity == base_capacity


def test_injector_direction_forward_spares_reverse():
    network, paths = build_network()
    scenario = FaultScenario(
        "oneway", [FaultEvent(1.0, "down", 0, direction="forward")]
    )
    scenario.apply(network.sim, paths)
    network.sim.run(until=1.5)
    assert all(link.is_down for link in paths[0].forward_links)
    assert not any(link.is_down for link in paths[0].reverse_links)


def test_injector_emits_fault_trace():
    network, paths = build_network()
    trace = TraceBus()
    records = []
    trace.subscribe("fault.apply", records.append)
    scenario = FaultScenario("one", [FaultEvent(1.0, "down", 1)])
    scenario.apply(network.sim, paths, trace=trace)
    network.sim.run(until=2.0)
    assert len(records) == 1
    assert records[0]["fault"] == "down"
    assert records[0]["path"] == 1


def test_injector_rejects_too_few_paths():
    network, paths = build_network()
    scenario = FaultScenario("big", [FaultEvent(1.0, "down", 2)], n_paths=3)
    with pytest.raises(ValueError):
        scenario.apply(network.sim, paths)


def test_injector_trace_event_plays_and_restores():
    from repro.traces import LinkTrace, TraceSample

    network, paths = build_network()
    links = paths[1].forward_links
    baseline_bw = links[0].bandwidth_bps
    replay = LinkTrace("crush", [TraceSample(0.0, bandwidth_bps=5e4)])
    scenario = FaultScenario(
        "replay",
        [FaultEvent(1.0, "trace", 1, replay), FaultEvent(3.0, "trace", 1, None)],
    )
    injector = scenario.apply(network.sim, paths)
    network.sim.run(until=2.0)
    assert links[0].bandwidth_bps == 5e4
    assert paths[0].forward_links[0].bandwidth_bps == baseline_bw  # path 0 clean
    network.sim.run(until=4.0)
    assert links[0].bandwidth_bps == baseline_bw  # restore event healed it
    assert not injector._players  # player retired with the restore
    # A replayed trace with no restore event is stopped by stop_players.
    open_ended = FaultScenario("open", [FaultEvent(1.0, "trace", 1, replay)])
    network2, paths2 = build_network()
    injector2 = open_ended.apply(network2.sim, paths2)
    network2.sim.run(until=2.0)
    assert paths2[1].forward_links[0].bandwidth_bps == 5e4
    injector2.stop_players()
    assert paths2[1].forward_links[0].bandwidth_bps == baseline_bw


# ----------------------------------------------------------------------
# Subflow-lifecycle (churn) events.
# ----------------------------------------------------------------------
def test_churn_event_validation():
    # handover needs a (to_path, break_s) pair ...
    with pytest.raises(ValueError):
        FaultEvent(1.0, "handover", 0)
    with pytest.raises(ValueError):
        FaultEvent(1.0, "handover", 0, (1, -0.5))
    with pytest.raises(ValueError):
        FaultEvent(1.0, "handover", 0, (-1, 0.3))
    assert FaultEvent(1.0, "handover", 0, (1, 0.3)).kind == "handover"
    # ... while path_down / path_up take no value at all.
    with pytest.raises(ValueError):
        FaultEvent(1.0, "path_down", 0, 0.5)
    with pytest.raises(ValueError):
        FaultEvent(1.0, "path_up", 0, 0.5)


def test_handover_target_checked_against_n_paths():
    with pytest.raises(ValueError):
        FaultScenario("h", [FaultEvent(1.0, "handover", 0, (5, 0.1))], n_paths=2)


def test_has_churn_and_settle_time():
    plain = FaultScenario.named("path_death")
    assert not plain.has_churn
    assert plain.settle_time == plain.heal_time
    churn = FaultScenario(
        "c", [FaultEvent(2.0, "path_down", 1), FaultEvent(4.0, "handover", 0, (1, 0.7))]
    )
    assert churn.has_churn
    assert set(CHURN_KINDS) == {"path_down", "path_up", "handover"}
    # A handover only settles once its blackout gap has elapsed.
    assert churn.settle_time == pytest.approx(4.7)
    assert churn.heal_time == 4.0


def test_active_paths_validation_and_default():
    scenario = FaultScenario("x", [], n_paths=3)
    assert scenario.active_paths == (0, 1, 2)
    scenario = FaultScenario("x", [], n_paths=2, active_paths=(0,))
    assert scenario.active_paths == (0,)
    with pytest.raises(ValueError):
        FaultScenario("x", [], n_paths=2, active_paths=())
    with pytest.raises(ValueError):
        FaultScenario("x", [], n_paths=2, active_paths=(0, 5))


def test_churn_scenario_requires_lifecycle_handler():
    network, paths = build_network()
    scenario = FaultScenario("c", [FaultEvent(1.0, "path_down", 1)])
    with pytest.raises(ValueError):
        scenario.apply(network.sim, paths)


def test_mobility_presets_are_churn_only():
    for name in MOBILITY_SCENARIOS:
        scenario = FaultScenario.named(name)
        assert scenario.has_churn, name
        assert all(event.kind in CHURN_KINDS for event in scenario.events), name
    # The two registries stay disjoint: a preset belongs to one harness.
    assert not set(MOBILITY_SCENARIOS) & set(SCENARIOS)


# ----------------------------------------------------------------------
# Overlap diagnosis: same-kind faults clobbering each other on one link.
# ----------------------------------------------------------------------
def test_injector_records_same_kind_overlap():
    network, paths = build_network()
    trace = TraceBus()
    records = []
    trace.subscribe("fault.overlap", records.append)
    scenario = FaultScenario(
        "clobber",
        [
            FaultEvent(1.0, "bandwidth", 1, 0.5),
            FaultEvent(2.0, "bandwidth", 1, 0.1),  # clobbers the first
            FaultEvent(3.0, "bandwidth", 1, 1.0),
        ],
    )
    injector = scenario.apply(network.sim, paths, trace=trace)
    network.sim.run(until=4.0)
    assert len(injector.overlaps) == 1
    previous, current = injector.overlaps[0]
    assert previous.time == 1.0 and current.time == 2.0
    assert len(records) == 1
    assert records[0]["fault"] == "bandwidth"
    assert records[0]["clobbered_time"] == 1.0
    assert records[0]["clobbered_value"] == 0.5


def test_restore_clears_active_fault_so_no_overlap():
    network, paths = build_network()
    scenario = FaultScenario(
        "sequential",
        [
            FaultEvent(1.0, "loss", 1, 0.5),
            FaultEvent(2.0, "loss", 1, None),  # heals before the next hit
            FaultEvent(3.0, "loss", 1, 0.3),
            FaultEvent(4.0, "loss", 1, None),
        ],
    )
    injector = scenario.apply(network.sim, paths)
    network.sim.run(until=5.0)
    assert injector.overlaps == []


def test_down_down_overlap_uses_shared_base_kind():
    network, paths = build_network()
    scenario = FaultScenario(
        "double_down",
        [
            FaultEvent(1.0, "down", 0),
            FaultEvent(2.0, "down", 0),  # path is already down
            FaultEvent(3.0, "up", 0),
        ],
    )
    injector = scenario.apply(network.sim, paths)
    network.sim.run(until=4.0)
    assert len(injector.overlaps) == 1


def test_different_paths_and_kinds_never_overlap():
    network, paths = build_network()
    scenario = FaultScenario(
        "disjoint",
        [
            FaultEvent(1.0, "bandwidth", 0, 0.5),
            FaultEvent(1.5, "delay", 0, 4.0),  # different kind, same link
            FaultEvent(2.0, "bandwidth", 1, 0.5),  # same kind, other path
            FaultEvent(3.0, "bandwidth", 0, 1.0),
            FaultEvent(3.0, "delay", 0, 1.0),
            FaultEvent(3.0, "bandwidth", 1, 1.0),
        ],
    )
    injector = scenario.apply(network.sim, paths)
    network.sim.run(until=4.0)
    assert injector.overlaps == []


# ----------------------------------------------------------------------
# Property: event ordering and application are deterministic.
# ----------------------------------------------------------------------
_event_strategy = st.one_of(
    st.tuples(st.just("down"), st.none()),
    st.tuples(st.just("up"), st.none()),
    st.tuples(
        st.just("bandwidth"),
        st.floats(min_value=0.1, max_value=2.0, allow_nan=False),
    ),
    st.tuples(
        st.just("delay"), st.floats(min_value=0.5, max_value=8.0, allow_nan=False)
    ),
    st.tuples(
        st.just("loss"),
        st.one_of(
            st.none(), st.floats(min_value=0.0, max_value=0.9, allow_nan=False)
        ),
    ),
    st.tuples(st.just("queue"), st.one_of(st.none(), st.integers(1, 5))),
)


def _link_state(paths):
    return [
        (
            link.is_down,
            round(link.bandwidth_bps, 6),
            round(link.delay_s, 9),
            type(link.loss_model).__name__,
            link.queue.capacity,
        )
        for path in paths
        for link in (*path.forward_links, *path.reverse_links)
    ]


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            _event_strategy,
            st.integers(0, 1),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_event_ordering_is_deterministic(raw_events):
    """Arming the same scenario against two identical topologies applies
    the events in exactly the same order (stable by time, listed order
    breaking ties) and leaves the links in exactly the same state."""
    events = [
        FaultEvent(time, kind, path, value)
        for time, (kind, value), path in raw_events
    ]
    scenario = FaultScenario("prop", events)

    # Sorting is stable: equal-time events keep their listed order.
    times = [event.time for event in scenario.events]
    assert times == sorted(times)
    for time in set(times):
        listed = [e for e in events if e.time == time]
        applied_order = [e for e in scenario.events if e.time == time]
        assert listed == applied_order

    outcomes = []
    for __ in range(2):
        network, paths = build_network()
        injector = scenario.apply(network.sim, paths)
        network.sim.run(until=11.0)
        outcomes.append((list(injector.applied), _link_state(paths)))
    assert outcomes[0][0] == list(scenario.events)
    assert outcomes[0] == outcomes[1]
