"""Tests for the fixed-rate FEC baseline (the Section III-B strawman)."""

import pytest

from repro.experiments.runner import run_transfer
from repro.fixedrate import FixedRateConfig, FixedRateConnection
from repro.metrics.collectors import MetricsSuite
from repro.net.topology import build_two_path_network
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs
from repro.workloads.sources import BulkSource
from tests.conftest import make_two_path
from tests.test_failure_injection import blackout_configs


def run_fixed(configs=None, loss2=0.0, duration=20.0, config=None, seed=7,
              sink=None):
    if configs is not None:
        trace = TraceBus()
        network, paths = build_two_path_network(
            configs, rng=RngStreams(seed), trace=trace
        )
    else:
        network, paths, trace = make_two_path(loss2=loss2, seed=seed)
    metrics = MetricsSuite(trace, bin_width_s=1.0)
    connection = FixedRateConnection(
        network.sim, paths, BulkSource(),
        config=config or FixedRateConfig(), trace=trace, sink=sink,
    )
    connection.start()
    network.sim.run(until=duration)
    return connection, metrics


# ----------------------------------------------------------------------
# Config.
# ----------------------------------------------------------------------
def test_code_symbols_follows_eq4():
    config = FixedRateConfig(symbols_per_block=100, estimated_loss=0.2)
    assert config.code_symbols == 125  # ceil(100 / 0.8)


def test_config_validation():
    with pytest.raises(ValueError):
        FixedRateConfig(estimated_loss=1.0)
    with pytest.raises(ValueError):
        FixedRateConfig(repair="magic")
    with pytest.raises(ValueError):
        FixedRateConfig(symbols_per_block=0)


# ----------------------------------------------------------------------
# Behaviour.
# ----------------------------------------------------------------------
def test_clean_paths_deliver_blocks_in_order():
    delivered = []
    connection, metrics = run_fixed(
        duration=10.0, sink=lambda block_id: delivered.append(block_id)
    )
    assert delivered == list(range(len(delivered)))
    assert len(delivered) > 50
    assert connection.symbols_retransmitted == 0


def test_lossy_path_triggers_retransmissions_and_still_completes():
    connection, metrics = run_fixed(loss2=0.15, duration=20.0)
    assert connection.symbols_retransmitted > 0
    assert connection.delivered_blocks > 100


def test_redundancy_grows_with_estimated_loss():
    redundancies = []
    for p_hat in (0.0, 0.15, 0.30):
        connection, __ = run_fixed(
            configs=table1_path_configs(TABLE1_CASES[3]),
            duration=12.0,
            config=FixedRateConfig(estimated_loss=p_hat),
        )
        redundancies.append(connection.redundancy_ratio())
    assert redundancies == sorted(redundancies)
    assert redundancies[-1] > 1.25


def test_gbn_wastes_more_than_selective():
    results = {}
    for repair in ("gbn", "selective"):
        connection, __ = run_fixed(
            configs=table1_path_configs(TABLE1_CASES[3]),
            duration=15.0,
            config=FixedRateConfig(repair=repair),
        )
        results[repair] = connection
    assert results["gbn"].gbn_duplicates > 0
    assert results["selective"].gbn_duplicates == 0
    assert (
        results["gbn"].symbols_retransmitted
        > results["selective"].symbols_retransmitted
    )


def test_same_path_repair_stalls_through_blackout():
    """The paper's 'fixed-rate coding constrains the transmission for a
    block over the same path' — during a blackout of path 2 the repairs
    are pinned to the dead path and delivery stops entirely, unlike FMTCP
    (see test_failure_injection)."""
    connection, metrics = run_fixed(
        configs=blackout_configs(), duration=30.0, seed=3
    )
    series = dict(metrics.goodput.series(30.0))
    stalled = sum(rate for t, rate in series.items() if 13.0 <= t < 20.0)
    assert stalled == pytest.approx(0.0)
    before = sum(rate for t, rate in series.items() if 4.0 <= t < 10.0)
    assert before > 1.0


def test_harness_protocol_fixedrate():
    result = run_transfer(
        "fixedrate", table1_path_configs(TABLE1_CASES[3]), duration_s=6.0, seed=1
    )
    assert result.protocol == "fixedrate"
    assert result.extras["blocks_decoded"] > 0
    assert "redundancy_ratio" in result.extras


def test_fixedrate_goodput_close_to_fmtcp_on_stationary_loss():
    """On stationary Bernoulli loss with good detection, fixed-rate MDS is
    competitive — the differences appear under non-stationarity (tested
    above) and parameter misestimation (the p̂ sweep)."""
    fixed = run_transfer(
        "fixedrate", table1_path_configs(TABLE1_CASES[3]), duration_s=15.0, seed=1
    )
    fmtcp = run_transfer(
        "fmtcp", table1_path_configs(TABLE1_CASES[3]), duration_s=15.0, seed=1
    )
    ratio = fixed.summary["goodput_mbytes_per_s"] / fmtcp.summary["goodput_mbytes_per_s"]
    assert 0.8 < ratio <= 1.05


def test_empty_paths_rejected():
    from repro.sim.engine import Simulator

    with pytest.raises(ValueError):
        FixedRateConnection(Simulator(), [], BulkSource())
