"""Flight recorder: bounded ring semantics, dump format, and the chaos
harness writing post-mortems on invariant violations."""

import json

from repro.faults import FaultScenario, resolve_scenario, run_chaos
from repro.sim.tracefile import read_trace_file
from repro.telemetry import FlightRecorder


def test_ring_keeps_only_last_capacity_records(trace):
    flight = FlightRecorder(trace, capacity=10)
    for index in range(25):
        trace.emit(float(index), "k", seq=index)
    assert len(flight) == 10
    assert flight.records_seen == 25
    assert flight.dropped == 15
    assert [record["seq"] for record in flight.records()] == list(range(15, 25))


def test_kind_filter(trace):
    flight = FlightRecorder(trace, capacity=8, kinds=["wanted"])
    trace.emit(0.0, "wanted")
    trace.emit(1.0, "ignored")
    assert [record.kind for record in flight.records()] == ["wanted"]


def test_clear_resets_ring_but_not_counter(trace):
    flight = FlightRecorder(trace, capacity=4)
    trace.emit(0.0, "k")
    flight.clear()
    assert len(flight) == 0
    assert flight.records_seen == 1


def test_close_detaches_and_is_idempotent(trace):
    flight = FlightRecorder(trace, capacity=4)
    trace.emit(0.0, "k")
    flight.close()
    flight.close()
    trace.emit(1.0, "k")
    assert len(flight) == 1  # nothing captured after close


def test_dump_format_reads_back_with_trace_reader(trace, tmp_path):
    flight = FlightRecorder(trace, capacity=4)
    for index in range(6):
        trace.emit(float(index), "k", seq=index, nested={"a": (1, 2)})
    path = tmp_path / "dump.jsonl"
    flight.dump(str(path), meta={"scenario": "test"})
    records = read_trace_file(str(path))
    header, body = records[0], records[1:]
    assert header["kind"] == "flight.meta"
    assert header["capacity"] == 4
    assert header["records_seen"] == 6
    assert header["records_retained"] == 4
    assert header["dropped"] == 2
    assert header["scenario"] == "test"
    assert [record["seq"] for record in body] == [2, 3, 4, 5]
    assert body[0]["nested"] == {"a": [1, 2]}  # _jsonable applied


def test_chaos_violation_writes_flight_dump_and_profile(tmp_path):
    # A run cut off mid-transfer cannot complete: guaranteed violation.
    report = run_chaos(
        "fmtcp",
        resolve_scenario("path_death"),
        seed=3,
        duration_s=6.0,
        flight_dump_dir=str(tmp_path),
        flight_capacity=128,
    )
    assert not report.ok
    assert report.flight_dump_path is not None
    records = read_trace_file(report.flight_dump_path)
    header = records[0]
    assert header["kind"] == "flight.meta"
    assert header["protocol"] == "fmtcp"
    assert header["seed"] == 3
    assert header["violations"]
    assert len(records) == header["records_retained"] + 1
    with open(report.profile_dump_path) as handle:
        profile = json.load(handle)
    assert profile["events"] > 0
    assert profile["by_kind"]


def test_chaos_clean_run_leaves_no_dump(tmp_path):
    report = run_chaos(
        "fmtcp",
        FaultScenario.named("path_death"),
        flight_dump_dir=str(tmp_path),
    )
    assert report.ok
    assert report.flight_dump_path is None
    assert report.profile_dump_path is None
    assert not list(tmp_path.iterdir())


def test_chaos_sanitizes_scenario_name_in_dump_path(tmp_path):
    report = run_chaos(
        "fmtcp",
        FaultScenario.random(5),
        seed=5,
        duration_s=5.0,  # too short to finish -> violation
        flight_dump_dir=str(tmp_path),
    )
    assert not report.ok
    assert ":" not in report.flight_dump_path.rsplit("/", 1)[-1]
