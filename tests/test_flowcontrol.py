"""Units and model-based properties for the flow-control primitives.

The stateful machine is the load-bearing test (the PR's safety
property): a sender gated by :class:`WindowGate` can never introduce a
unit the receiver's :class:`ReceiveWindow` did not license — even when
feedback is replayed stale and out of order, as multipath ACKs are —
so receiver occupancy stays bounded by capacity *by construction*.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.robustness.flowcontrol import ReceiveWindow, WindowGate, ZeroWindowProber
from repro.sim.engine import Simulator


class TestReceiveWindow:
    def test_validates_capacity(self):
        with pytest.raises(ValueError):
            ReceiveWindow(0)

    def test_limit_is_drained_plus_capacity(self):
        window = ReceiveWindow(4)
        assert window.limit == 4
        assert window.admits(3) and not window.admits(4)
        window.on_drained(2)
        assert window.limit == 6
        assert window.admits(5) and not window.admits(6)

    def test_advertise_closes_the_licence(self):
        window = ReceiveWindow(4)
        # acked caught up with the licence and nothing drained: closed.
        assert window.advertise(4, occupancy=4) == 0
        assert window.zero_window_advertises == 1
        window.on_drained(1)
        assert window.advertise(4, occupancy=3) == 1

    def test_tracks_peak_occupancy(self):
        window = ReceiveWindow(8)
        window.advertise(0, occupancy=3)
        window.advertise(1, occupancy=5)
        window.advertise(2, occupancy=2)
        assert window.peak_occupancy == 5


class TestWindowGate:
    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            WindowGate(0)
        with pytest.raises(ValueError):
            WindowGate(8, high_watermark=0.5, low_watermark=0.75)
        with pytest.raises(ValueError):
            WindowGate(8, high_watermark=1.5)

    def test_limit_is_monotone_under_stale_feedback(self):
        gate = WindowGate(8)
        gate.advertise(10, 8)
        assert gate.limit == 18
        # A stale ACK from a slower subflow cannot retract the licence.
        gate.advertise(3, 8)
        assert gate.limit == 18

    def test_pause_resume_hysteresis(self):
        gate = WindowGate(8, high_watermark=0.75, low_watermark=0.5)
        gate.advertise(0, 2)  # backlog 6 >= 6: pause
        assert gate.paused and gate.pauses == 1
        gate.advertise(0, 3)  # backlog 5, still above low watermark
        assert gate.paused and gate.credit(0) == 0
        gate.advertise(0, 4)  # backlog 4 <= 4: resume
        assert not gate.paused
        assert gate.pauses == 1

    def test_credit_and_blocked(self):
        gate = WindowGate(4)
        assert gate.credit(0) == 4
        assert gate.credit(4) == 0 and gate.blocked(4)
        gate.advertise(2, 4)
        assert gate.credit(4) == 2 and not gate.blocked(4)

    def test_counts_zero_windows(self):
        gate = WindowGate(4)
        gate.advertise(4, 0)
        assert gate.zero_windows_seen == 1
        assert gate.last_window == 0


class TestZeroWindowProber:
    def test_validates_intervals(self):
        with pytest.raises(ValueError):
            ZeroWindowProber(Simulator(), lambda: True, initial_s=0.0)
        with pytest.raises(ValueError):
            ZeroWindowProber(
                Simulator(), lambda: True, initial_s=2.0, max_s=1.0
            )

    def test_exponential_backoff_while_blocked(self):
        sim = Simulator()
        fired = []
        prober = ZeroWindowProber(
            sim, lambda: fired.append(sim.now) or True, initial_s=0.5, max_s=4.0
        )
        prober.arm()
        prober.arm()  # idempotent: still one pending probe
        sim.run(until=20.0)
        # 0.5, then 1, 2, 4, 4, 4... between firings (capped).
        assert fired[0] == pytest.approx(0.5)
        gaps = [b - a for a, b in zip(fired, fired[1:])]
        assert gaps[0] == pytest.approx(1.0)
        assert gaps[1] == pytest.approx(2.0)
        assert all(gap == pytest.approx(4.0) for gap in gaps[2:])
        assert prober.probes_fired == len(fired)

    def test_fire_returning_false_stops_and_resets(self):
        sim = Simulator()
        prober = ZeroWindowProber(sim, lambda: False, initial_s=0.5, max_s=4.0)
        prober.arm()
        sim.run(until=10.0)
        assert prober.probes_fired == 1
        assert not prober.armed
        # Re-arming starts from the initial interval again.
        prober.arm()
        sim.run(until=10.6)
        assert prober.probes_fired == 2

    def test_disarm_cancels_and_resets(self):
        sim = Simulator()
        prober = ZeroWindowProber(sim, lambda: True, initial_s=0.5, max_s=4.0)
        prober.arm()
        prober.disarm()
        sim.run(until=5.0)
        assert prober.probes_fired == 0
        assert not prober.armed


class FlowControlMachine(RuleBasedStateMachine):
    """Sender (WindowGate) vs receiver (ReceiveWindow) under adversarial
    feedback: delivery, drain, and ACK replay in any order. The licence
    must keep receiver occupancy bounded by capacity, always."""

    @initialize(
        capacity=st.integers(min_value=1, max_value=12),
        high=st.floats(min_value=0.5, max_value=1.0),
        low_frac=st.floats(min_value=0.1, max_value=1.0),
    )
    def setup(self, capacity, high, low_frac):
        self.capacity = capacity
        self.window = ReceiveWindow(capacity)
        self.gate = WindowGate(
            capacity, high_watermark=high, low_watermark=high * low_frac
        )
        self.next_seq = 0  # sender's next fresh unit id
        self.held = 0  # receiver-held (undrained) units
        self.feedback_log = []  # every (acked, window) ever generated
        self.limit_seen = self.gate.limit

    @precondition(lambda self: self.gate.credit(self.next_seq) > 0)
    @rule()
    def introduce_unit(self):
        # THE safety property: anything the gate admits, the receiver
        # licensed. A violation here is an overflow in a real run.
        assert self.window.admits(self.next_seq), (
            f"gate admitted seq {self.next_seq} beyond receiver limit "
            f"{self.window.limit}"
        )
        self.next_seq += 1
        self.held += 1

    @precondition(lambda self: self.held > 0)
    @rule(data=st.data())
    def drain(self, data):
        units = data.draw(st.integers(min_value=1, max_value=self.held))
        self.window.on_drained(units)
        self.held -= units

    @rule()
    def fresh_feedback(self):
        acked = self.next_seq  # cumulative ack of everything introduced
        window = self.window.advertise(acked, self.held)
        self.feedback_log.append((acked, window))
        self.gate.advertise(acked, window)

    @precondition(lambda self: len(self.feedback_log) > 0)
    @rule(data=st.data())
    def replay_stale_feedback(self, data):
        # Multipath reordering: any historical ACK may arrive again, late.
        acked, window = data.draw(st.sampled_from(self.feedback_log))
        self.gate.advertise(acked, window)

    @invariant()
    def occupancy_bounded_by_capacity(self):
        assert self.held <= self.capacity

    @invariant()
    def in_flight_never_exceeds_advertised_window(self):
        # Undrained units the sender has introduced fit in the licence.
        assert self.next_seq - self.window.drained <= self.capacity

    @invariant()
    def gate_never_outruns_receiver(self):
        assert self.gate.limit <= self.window.limit

    @invariant()
    def limit_is_monotone(self):
        assert self.gate.limit >= self.limit_seen
        self.limit_seen = self.gate.limit


TestFlowControlStateful = FlowControlMachine.TestCase
TestFlowControlStateful.settings = settings(
    max_examples=60, stateful_step_count=50, deadline=None
)
