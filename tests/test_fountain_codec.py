"""Unit and property tests for the random-linear codec."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fountain.codec import (
    BlockDecoder,
    BlockEncoder,
    Symbol,
    join_parts,
    split_into_parts,
)


# ----------------------------------------------------------------------
# Part splitting.
# ----------------------------------------------------------------------
def test_split_and_join_roundtrip():
    data = bytes(range(100))
    parts = split_into_parts(data, k=10, part_size=10)
    assert join_parts(parts, part_size=10, length=100) == data


def test_split_pads_short_data():
    parts = split_into_parts(b"abc", k=2, part_size=4)
    assert len(parts) == 2
    assert join_parts(parts, 4, length=3) == b"abc"


def test_split_rejects_oversized_data():
    with pytest.raises(ValueError):
        split_into_parts(b"x" * 100, k=2, part_size=4)


# ----------------------------------------------------------------------
# Symbols.
# ----------------------------------------------------------------------
def test_symbol_degree():
    assert Symbol(0b1011, 0).degree() == 3


def test_symbol_zero_coeff_rejected():
    with pytest.raises(ValueError):
        Symbol(0, 0)


# ----------------------------------------------------------------------
# Encoder.
# ----------------------------------------------------------------------
def test_systematic_symbols_decode_immediately():
    data = bytes(range(64))
    encoder = BlockEncoder(data, k=8, part_size=8, rng=random.Random(0))
    decoder = BlockDecoder(k=8, part_size=8, data_length=64)
    for symbol in encoder.systematic_symbols():
        decoder.add_symbol(symbol)
    assert decoder.is_complete
    assert decoder.decode() == data


def test_symbol_for_coeff_is_deterministic():
    encoder = BlockEncoder(b"hello world!", k=4, part_size=3)
    a = encoder.symbol_for_coeff(0b1010)
    b = encoder.symbol_for_coeff(0b1010)
    assert a.coeff == b.coeff and a.data == b.data


def test_symbol_for_coeff_out_of_range():
    encoder = BlockEncoder(b"hi", k=2, part_size=1)
    with pytest.raises(ValueError):
        encoder.symbol_for_coeff(0)
    with pytest.raises(ValueError):
        encoder.symbol_for_coeff(4)


def test_encoder_counts_emissions():
    encoder = BlockEncoder(b"data", k=2, part_size=2, rng=random.Random(1))
    for __ in range(5):
        encoder.next_symbol()
    assert encoder.symbols_emitted == 5


def test_encoder_validation():
    with pytest.raises(ValueError):
        BlockEncoder(b"", k=0, part_size=1)
    with pytest.raises(ValueError):
        BlockEncoder(b"", k=1, part_size=0)


# ----------------------------------------------------------------------
# Decoder.
# ----------------------------------------------------------------------
def test_decoder_reports_k_bar_and_redundancy():
    data = b"0123456789abcdef"
    encoder = BlockEncoder(data, k=4, part_size=4, rng=random.Random(3))
    decoder = BlockDecoder(k=4, part_size=4, data_length=len(data))
    sym = encoder.next_symbol()
    decoder.add_symbol(sym)
    assert decoder.independent_symbols == 1
    decoder.add_symbol(sym)  # exact duplicate
    assert decoder.independent_symbols == 1
    assert decoder.symbols_redundant == 1
    assert decoder.symbols_received == 2


def test_decode_before_complete_raises():
    decoder = BlockDecoder(k=4, part_size=4)
    with pytest.raises(ValueError):
        decoder.decode()


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=32),
    part_size=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_roundtrip_through_random_symbols(k, part_size, seed):
    """Random data of any shape decodes exactly from random symbols."""
    rng = random.Random(seed)
    length = rng.randint(0, k * part_size)
    data = bytes(rng.getrandbits(8) for __ in range(length))
    encoder = BlockEncoder(data, k=k, part_size=part_size, rng=rng)
    decoder = BlockDecoder(k=k, part_size=part_size, data_length=length)
    guard = 0
    while not decoder.is_complete:
        decoder.add_symbol(encoder.next_symbol())
        guard += 1
        assert guard < 50 * k + 200
    assert decoder.decode() == data


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_property_erasures_only_delay_decoding(seed):
    """Dropping any subset of symbols never corrupts the result."""
    rng = random.Random(seed)
    data = bytes(rng.getrandbits(8) for __ in range(256))
    encoder = BlockEncoder(data, k=16, part_size=16, rng=rng)
    decoder = BlockDecoder(k=16, part_size=16, data_length=256)
    while not decoder.is_complete:
        symbol = encoder.next_symbol()
        if rng.random() < 0.4:
            continue  # erased in transit
        decoder.add_symbol(symbol)
    assert decoder.decode() == data


def test_expected_overhead_is_small():
    """Mean extra symbols to full rank ~1.6 (MacKay); sanity-check empirically."""
    rng = random.Random(9)
    total_extra = 0
    trials = 60
    for __ in range(trials):
        encoder = BlockEncoder(bytes(64), k=32, part_size=2, rng=rng)
        decoder = BlockDecoder(k=32, part_size=2)
        received = 0
        while not decoder.is_complete:
            decoder.add_symbol(encoder.next_symbol())
            received += 1
        total_extra += received - 32
    assert total_extra / trials < 3.5
