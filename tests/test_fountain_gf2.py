"""Unit and property tests for GF(2) elimination."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fountain.gf2 import Gf2Eliminator


def test_rank_starts_at_zero():
    eliminator = Gf2Eliminator(4)
    assert eliminator.rank == 0
    assert not eliminator.is_full_rank


def test_unit_vectors_are_independent():
    eliminator = Gf2Eliminator(4)
    for bit in range(4):
        assert eliminator.add_row(1 << bit, payload=bit + 100)
    assert eliminator.is_full_rank
    assert eliminator.solve() == [100, 101, 102, 103]


def test_duplicate_row_is_dependent():
    eliminator = Gf2Eliminator(4)
    assert eliminator.add_row(0b1010, payload=1)
    assert not eliminator.add_row(0b1010, payload=1)
    assert eliminator.rank == 1
    assert eliminator.dependent_rows == 1


def test_xor_combination_is_dependent():
    eliminator = Gf2Eliminator(4)
    eliminator.add_row(0b0011, 1)
    eliminator.add_row(0b0101, 2)
    assert not eliminator.add_row(0b0110, 1 ^ 2)  # sum of the two
    assert eliminator.rank == 2


def test_zero_row_is_dependent():
    eliminator = Gf2Eliminator(4)
    assert not eliminator.add_row(0, 0)


def test_solve_before_full_rank_raises():
    eliminator = Gf2Eliminator(3)
    eliminator.add_row(0b001, 5)
    with pytest.raises(ValueError):
        eliminator.solve()


def test_solve_recovers_payloads_from_dense_rows():
    # parts p0=7, p1=11, p2=13; rows are XORs per their coefficient bits.
    parts = [7, 11, 13]

    def encode(coeff):
        value = 0
        for bit in range(3):
            if coeff >> bit & 1:
                value ^= parts[bit]
        return value

    eliminator = Gf2Eliminator(3)
    for coeff in (0b111, 0b011, 0b101):
        eliminator.add_row(coeff, encode(coeff))
    assert eliminator.solve() == parts


def test_would_be_independent_does_not_mutate():
    eliminator = Gf2Eliminator(4)
    eliminator.add_row(0b0011, 1)
    assert eliminator.would_be_independent(0b0100)
    assert not eliminator.would_be_independent(0b0011)
    assert eliminator.rank == 1


def test_coefficient_out_of_range_rejected():
    eliminator = Gf2Eliminator(3)
    with pytest.raises(ValueError):
        eliminator.add_row(0b1000, 0)
    with pytest.raises(ValueError):
        eliminator.add_row(-1, 0)


def test_k_validation():
    with pytest.raises(ValueError):
        Gf2Eliminator(0)


@settings(max_examples=30, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=24),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_random_rows_recover_random_parts(k, seed):
    """Feeding random rows until full rank always recovers the parts."""
    rng = random.Random(seed)
    parts = [rng.getrandbits(32) for __ in range(k)]

    def encode(coeff):
        value = 0
        remaining = coeff
        while remaining:
            bit = remaining.bit_length() - 1
            value ^= parts[bit]
            remaining &= ~(1 << bit)
        return value

    eliminator = Gf2Eliminator(k)
    attempts = 0
    while not eliminator.is_full_rank:
        attempts += 1
        assert attempts < 50 * k + 200, "rank is not progressing"
        coeff = rng.getrandbits(k)
        if coeff:
            eliminator.add_row(coeff, encode(coeff))
    assert eliminator.solve() == parts


@settings(max_examples=20, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_rank_never_exceeds_k_and_is_monotone(k, seed):
    rng = random.Random(seed)
    eliminator = Gf2Eliminator(k)
    previous = 0
    for __ in range(5 * k):
        eliminator.add_row(rng.getrandbits(k), rng.getrandbits(8))
        assert previous <= eliminator.rank <= k
        previous = eliminator.rank
