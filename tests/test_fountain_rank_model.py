"""Tests for the statistical rank-evolution model — including the property
that justifies using it in place of the real codec (DESIGN.md §3.2)."""

import random

import pytest

from repro.fountain.codec import BlockDecoder, BlockEncoder
from repro.fountain.rank_model import (
    RankEvolutionModel,
    decoding_failure_probability,
    expected_overhead_symbols,
)


# ----------------------------------------------------------------------
# Eq. (2).
# ----------------------------------------------------------------------
def test_failure_probability_below_k_is_one():
    assert decoding_failure_probability(10, 0) == 1.0
    assert decoding_failure_probability(10, 9.999) == 1.0


def test_failure_probability_at_k_is_one():
    # 2^(k-k) = 1: holding exactly k symbols gives no success guarantee.
    assert decoding_failure_probability(10, 10) == 1.0


def test_failure_probability_decays_exponentially():
    assert decoding_failure_probability(10, 11) == pytest.approx(0.5)
    assert decoding_failure_probability(10, 13) == pytest.approx(0.125)
    assert decoding_failure_probability(10, 20) == pytest.approx(2.0**-10)


def test_failure_probability_fractional_received():
    assert decoding_failure_probability(10, 11.5) == pytest.approx(2.0**-1.5)


# ----------------------------------------------------------------------
# Expected overhead.
# ----------------------------------------------------------------------
def test_expected_overhead_approaches_mackay_constant():
    # Known limit: sum_{j>=1} 1/(2^j - 1) ≈ 1.606 for large k.
    assert expected_overhead_symbols(64) == pytest.approx(1.6067, abs=0.01)


def test_expected_overhead_k1():
    # One part: a symbol is always the part itself; zero overhead.
    assert expected_overhead_symbols(1) == pytest.approx(0.0)


# ----------------------------------------------------------------------
# Model behaviour.
# ----------------------------------------------------------------------
def test_rank_monotone_and_completes():
    model = RankEvolutionModel(32, rng=random.Random(0))
    previous = 0
    while not model.is_complete:
        model.add_symbol()
        assert model.independent_symbols >= previous
        previous = model.independent_symbols
    assert model.independent_symbols == 32


def test_symbols_after_completion_are_redundant():
    model = RankEvolutionModel(4, rng=random.Random(1))
    while not model.is_complete:
        model.add_symbol()
    before = model.symbols_redundant
    assert not model.add_symbol()
    assert model.symbols_redundant == before + 1


def test_k1_first_symbol_always_completes():
    model = RankEvolutionModel(1, rng=random.Random(2))
    assert model.add_symbol()
    assert model.is_complete


def test_validation():
    with pytest.raises(ValueError):
        RankEvolutionModel(0)


# ----------------------------------------------------------------------
# The equivalence property: statistical model vs real decoder.
# ----------------------------------------------------------------------
def test_model_matches_real_decoder_overhead_distribution():
    """Mean symbols-to-complete must agree between model and real codec.

    Both processes are (identical) Markov chains on the rank; with 400
    trials each, their means should agree within a small tolerance of the
    closed-form expectation k + overhead(k).
    """
    k, trials = 16, 400
    rng = random.Random(42)

    def run_real():
        encoder = BlockEncoder(bytes(k), k=k, part_size=1, rng=rng)
        decoder = BlockDecoder(k=k, part_size=1)
        count = 0
        while not decoder.is_complete:
            decoder.add_symbol(encoder.next_symbol())
            count += 1
        return count

    def run_model():
        model = RankEvolutionModel(k, rng=rng)
        count = 0
        while not model.is_complete:
            model.add_symbol()
            count += 1
        return count

    real_mean = sum(run_real() for __ in range(trials)) / trials
    model_mean = sum(run_model() for __ in range(trials)) / trials
    expected = k + expected_overhead_symbols(k)
    assert real_mean == pytest.approx(expected, abs=0.5)
    assert model_mean == pytest.approx(expected, abs=0.5)
    assert real_mean == pytest.approx(model_mean, abs=0.7)


def test_model_matches_real_decoder_dependence_rate_at_partial_rank():
    """P(dependent | rank r) of a fresh symbol matches the model's formula.

    Builds a real decoder up to rank r, then probes thousands of fresh
    random symbols *without inserting them* and compares the dependent
    fraction against (2^r − 1)/(2^k − 1).
    """
    k, r, probes = 8, 6, 20_000
    rng = random.Random(7)
    encoder = BlockEncoder(bytes(k), k=k, part_size=1, rng=rng)
    decoder = BlockDecoder(k=k, part_size=1)
    while decoder.independent_symbols < r:
        decoder.add_symbol(encoder.next_symbol())

    eliminator = decoder._eliminator
    dependent = 0
    for __ in range(probes):
        coeff = 0
        while coeff == 0:
            coeff = rng.getrandbits(k)
        if not eliminator.would_be_independent(coeff):
            dependent += 1

    p_dep = (2.0**r - 1.0) / (2.0**k - 1.0)
    assert dependent / probes == pytest.approx(p_dep, rel=0.1)
