"""Tests for Soliton distributions and LT codes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fountain.lt import LtDecoder, LtEncoder, LtSymbol
from repro.fountain.soliton import DegreeSampler, ideal_soliton, robust_soliton


# ----------------------------------------------------------------------
# Distributions.
# ----------------------------------------------------------------------
def test_ideal_soliton_sums_to_one():
    for k in (1, 2, 10, 100):
        assert sum(ideal_soliton(k)) == pytest.approx(1.0)


def test_ideal_soliton_values():
    dist = ideal_soliton(4)
    assert dist[0] == pytest.approx(1 / 4)
    assert dist[1] == pytest.approx(1 / 2)
    assert dist[2] == pytest.approx(1 / 6)
    assert dist[3] == pytest.approx(1 / 12)


def test_robust_soliton_sums_to_one():
    for k in (4, 16, 64, 256):
        assert sum(robust_soliton(k)) == pytest.approx(1.0)


def test_robust_soliton_boosts_low_degrees():
    k = 64
    ideal = ideal_soliton(k)
    robust = robust_soliton(k)
    assert robust[0] > ideal[0]  # degree-1 spike keeps the ripple alive


def test_robust_soliton_validation():
    with pytest.raises(ValueError):
        robust_soliton(10, delta=0.0)
    with pytest.raises(ValueError):
        robust_soliton(10, c=-1.0)


def test_degree_sampler_range_and_bias():
    rng = random.Random(0)
    sampler = DegreeSampler(ideal_soliton(16), rng)
    samples = [sampler.sample() for __ in range(5000)]
    assert min(samples) >= 1 and max(samples) <= 16
    # Degree 2 has probability 1/2 under the ideal Soliton.
    assert samples.count(2) / len(samples) == pytest.approx(0.5, abs=0.05)


def test_degree_sampler_rejects_unnormalised():
    with pytest.raises(ValueError):
        DegreeSampler([0.5, 0.2])


# ----------------------------------------------------------------------
# LT encode/decode.
# ----------------------------------------------------------------------
def test_lt_symbol_degree_and_validation():
    assert LtSymbol(frozenset({1, 3}), 0).degree() == 2
    with pytest.raises(ValueError):
        LtSymbol(frozenset(), 0)


def test_lt_roundtrip_clean_channel():
    rng = random.Random(5)
    data = bytes(rng.getrandbits(8) for __ in range(256))
    encoder = LtEncoder(data, k=32, part_size=8, rng=rng)
    decoder = LtDecoder(k=32, part_size=8, data_length=256)
    guard = 0
    while not decoder.is_complete:
        decoder.add_symbol(encoder.next_symbol())
        guard += 1
        if guard % 16 == 0:
            decoder.try_ge_completion()
        assert guard < 2000
    assert decoder.decode() == data


def test_lt_roundtrip_with_erasures():
    rng = random.Random(6)
    data = bytes(rng.getrandbits(8) for __ in range(128))
    encoder = LtEncoder(data, k=16, part_size=8, rng=rng)
    decoder = LtDecoder(k=16, part_size=8, data_length=128)
    guard = 0
    while not decoder.is_complete:
        symbol = encoder.next_symbol()
        guard += 1
        assert guard < 5000
        if rng.random() < 0.3:
            continue
        decoder.add_symbol(symbol)
        if guard % 16 == 0:
            decoder.try_ge_completion()
    assert decoder.decode() == data


def test_lt_peeling_cascade_from_degree_one():
    """A degree-1 symbol must trigger recovery through chained symbols."""
    decoder = LtDecoder(k=3, part_size=1)
    parts = [5, 9, 12]
    decoder.add_symbol(LtSymbol(frozenset({0, 1}), parts[0] ^ parts[1]))
    decoder.add_symbol(LtSymbol(frozenset({1, 2}), parts[1] ^ parts[2]))
    assert decoder.recovered_parts == 0
    decoder.add_symbol(LtSymbol(frozenset({0}), parts[0]))  # the spark
    assert decoder.is_complete
    assert list(decoder.decode()) == parts


def test_lt_ge_fallback_solves_stalled_residual():
    """Peeling stalls on a dense residual; GE fallback must finish it."""
    decoder = LtDecoder(k=3, part_size=1)
    parts = [3, 7, 11]
    decoder.add_symbol(LtSymbol(frozenset({0, 1}), parts[0] ^ parts[1]))
    decoder.add_symbol(LtSymbol(frozenset({1, 2}), parts[1] ^ parts[2]))
    decoder.add_symbol(LtSymbol(frozenset({0, 1, 2}), parts[0] ^ parts[1] ^ parts[2]))
    assert not decoder.is_complete  # no degree-1 symbol: peeling is stuck
    assert decoder.try_ge_completion()
    assert list(decoder.decode()) == parts


def test_lt_decode_incomplete_raises():
    decoder = LtDecoder(k=4, part_size=1, ge_fallback=False)
    decoder.add_symbol(LtSymbol(frozenset({0}), 1))
    with pytest.raises(ValueError):
        decoder.decode()


def test_lt_overhead_is_modest():
    """Robust Soliton LT should decode from ~k(1+eps), eps well under 1."""
    rng = random.Random(10)
    totals = []
    for __ in range(10):
        data = bytes(rng.getrandbits(8) for __ in range(256))
        encoder = LtEncoder(data, k=64, part_size=4, rng=rng)
        decoder = LtDecoder(k=64, part_size=4, data_length=256)
        count = 0
        while not decoder.is_complete:
            decoder.add_symbol(encoder.next_symbol())
            count += 1
            if count % 8 == 0:
                decoder.try_ge_completion()
        totals.append(count)
    assert sum(totals) / len(totals) < 64 * 1.8


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_property_lt_roundtrip(seed):
    rng = random.Random(seed)
    k = rng.randint(4, 48)
    part_size = rng.randint(1, 16)
    length = rng.randint(1, k * part_size)
    data = bytes(rng.getrandbits(8) for __ in range(length))
    encoder = LtEncoder(data, k=k, part_size=part_size, rng=rng)
    decoder = LtDecoder(k=k, part_size=part_size, data_length=length)
    guard = 0
    while not decoder.is_complete:
        decoder.add_symbol(encoder.next_symbol())
        guard += 1
        if guard % 8 == 0:
            decoder.try_ge_completion()
        assert guard < 100 * k + 500
    assert decoder.decode() == data
