"""Golden-value regression: exact behavioural anchors.

If any of these fail after an intentional behaviour change, regenerate
the anchors with ``python -m repro.experiments.golden`` and review the
diff of ``golden.json`` like any other code change.
"""

import pytest

from repro.experiments.golden import (
    ANCHORS,
    RELATIVE_TOLERANCE,
    load_golden,
    measure_anchor,
)

GOLDEN = load_golden()


@pytest.mark.parametrize(
    "protocol,case_id,duration_s,seed",
    ANCHORS,
    ids=[f"{p}-case{c}" for p, c, __, __ in ANCHORS],
)
def test_anchor_matches_golden(protocol, case_id, duration_s, seed):
    key = f"{protocol}/case{case_id}/{duration_s:g}s/seed{seed}"
    assert key in GOLDEN, (
        f"no golden value for {key}; run `python -m repro.experiments.golden`"
    )
    measured = measure_anchor(protocol, case_id, duration_s, seed)
    for metric, expected in GOLDEN[key].items():
        assert measured[metric] == pytest.approx(
            expected, rel=RELATIVE_TOLERANCE
        ), f"{key}:{metric} drifted from golden"


def test_golden_file_covers_all_anchors():
    keys = {
        f"{protocol}/case{case_id}/{duration_s:g}s/seed{seed}"
        for protocol, case_id, duration_s, seed in ANCHORS
    }
    assert keys <= set(GOLDEN)
