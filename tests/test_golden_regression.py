"""Golden-value regression: exact behavioural anchors.

If any of these fail after an intentional behaviour change, regenerate
the anchors with ``python -m repro.experiments.golden`` and review the
diff of ``golden.json`` like any other code change.
"""

import json

import pytest

from repro.experiments.golden import (
    ANCHORS,
    GOLDEN_PATH,
    RELATIVE_TOLERANCE,
    load_golden,
    measure_all,
    measure_anchor,
)

GOLDEN = load_golden()


@pytest.mark.parametrize(
    "protocol,case_id,duration_s,seed",
    ANCHORS,
    ids=[f"{p}-case{c}" for p, c, __, __ in ANCHORS],
)
def test_anchor_matches_golden(protocol, case_id, duration_s, seed):
    key = f"{protocol}/case{case_id}/{duration_s:g}s/seed{seed}"
    assert key in GOLDEN, (
        f"no golden value for {key}; run `python -m repro.experiments.golden`"
    )
    measured = measure_anchor(protocol, case_id, duration_s, seed)
    for metric, expected in GOLDEN[key].items():
        assert measured[metric] == pytest.approx(
            expected, rel=RELATIVE_TOLERANCE
        ), f"{key}:{metric} drifted from golden"


def test_golden_file_covers_all_anchors():
    keys = {
        f"{protocol}/case{case_id}/{duration_s:g}s/seed{seed}"
        for protocol, case_id, duration_s, seed in ANCHORS
    }
    assert keys <= set(GOLDEN)


def test_churn_knobs_default_off():
    """The subflow-lifecycle machinery must be invisible unless asked for:
    statically built connections are born ACTIVE with every path in play."""
    from repro.core.config import FmtcpConfig
    from repro.core.connection import FmtcpConnection
    from repro.faults import FaultScenario
    from repro.mptcp.connection import MptcpConnection
    from repro.net.topology import PathConfig, build_two_path_network
    from repro.sim.rng import RngStreams
    from repro.workloads.sources import BulkSource

    import inspect

    from repro.tcp.subflow import Subflow

    assert inspect.signature(Subflow).parameters["join_delay_s"].default is None

    configs = [PathConfig(bandwidth_bps=4e6, delay_s=0.02) for __ in range(2)]
    network, paths = build_two_path_network(configs, rng=RngStreams(1))
    for connection in (
        FmtcpConnection(
            network.sim, paths, BulkSource(), config=FmtcpConfig(),
            rng=RngStreams(1),
        ),
        MptcpConnection(network.sim, paths, BulkSource()),
    ):
        assert all(s.state == "active" for s in connection.subflows)
        assert all(s.usable for s in connection.subflows)
        connection.close()

    # Scenarios without an explicit active_paths use every path, exactly
    # as before the churn extension.
    assert FaultScenario("x", [], n_paths=2).active_paths == (0, 1)


def test_corruption_knobs_default_off():
    """The data-integrity machinery must be invisible unless asked for:
    no link grows a corruption model, packets start unsealed, and the
    randomized chaos scenarios never draw corruption events (which would
    shift every downstream RNG draw and break old seeds)."""
    import inspect

    from repro.faults import CORRUPTION_KINDS, FaultScenario
    from repro.net.corruption import BernoulliCorruption
    from repro.net.link import Link
    from repro.net.packet import Packet
    from repro.net.topology import PathConfig, build_two_path_network
    from repro.sim.rng import RngStreams

    assert inspect.signature(Link).parameters["corruption_model"].default is None
    assert inspect.signature(BernoulliCorruption).parameters["evade_crc"].default == 0.0

    configs = [PathConfig(bandwidth_bps=4e6, delay_s=0.02) for __ in range(2)]
    __, paths = build_two_path_network(configs, rng=RngStreams(1))
    for path in paths:
        for link in (*path.forward_links, *path.reverse_links):
            assert link.corruption_model is None
            assert link.packets_corrupted == 0
    assert Packet(100, "a", "b", 1, 2).checksum is None

    # The random chaos generator's kind pool must stay corruption-free:
    # old seeds must keep producing the exact same timelines.
    for seed in range(1, 20):
        scenario = FaultScenario.random(seed)
        assert not scenario.has_corruption
        assert all(e.kind not in CORRUPTION_KINDS for e in scenario.events)


def test_flow_control_knobs_default_off():
    """The flow-control machinery must be invisible unless asked for: no
    window accountant or sender gate exists, the application drains
    instantly, ACK feedback carries no advertised window (so its
    integrity digest — and therefore every golden trace — is unchanged),
    and the trace bus boots with an empty pending queue."""
    import inspect

    from repro.core.config import FmtcpConfig
    from repro.core.connection import FmtcpConnection
    from repro.core.packets import FmtcpFeedback
    from repro.mptcp.connection import MptcpConfig, MptcpConnection
    from repro.net.topology import PathConfig, build_two_path_network
    from repro.sim.rng import RngStreams
    from repro.sim.trace import TraceBus
    from repro.workloads.sources import BulkSource

    assert FmtcpConfig().flow_control is False
    assert FmtcpConfig().recv_drain_rate_bps is None
    assert MptcpConfig().flow_control is False
    assert MptcpConfig().recv_drain_rate_bps is None
    assert (
        inspect.signature(FmtcpFeedback).parameters["advertised_window"].default
        is None
    )
    # No advertised window -> the digest has no ":aw" suffix: the wire
    # format (and packet CRC coverage) is byte-identical to the seed.
    digest = FmtcpFeedback({}, 0).integrity_digest()
    assert b":aw" not in digest

    configs = [PathConfig(bandwidth_bps=4e6, delay_s=0.02) for __ in range(2)]
    network, paths = build_two_path_network(configs, rng=RngStreams(1))
    fmtcp = FmtcpConnection(
        network.sim, paths, BulkSource(), config=FmtcpConfig(),
        rng=RngStreams(1),
    )
    assert fmtcp.receiver.window is None
    assert fmtcp.sender.flow_gate is None
    mptcp = MptcpConnection(network.sim, paths, BulkSource())
    assert mptcp.recv_window is None
    assert mptcp.flow_gate is None
    for connection in (fmtcp, mptcp):
        flow = connection.flow_stats()
        assert flow["enabled"] is False
        connection.close()

    bus = TraceBus()
    assert bus.records_dropped == 0 and len(bus._pending) == 0


def test_span_knobs_default_off():
    """The span layer must be invisible unless asked for: telemetry does
    not collect spans by default, block managers are born untraced, and a
    fresh trace bus has no span subscribers (so every ``span.*`` emit
    stays behind its ``has_subscribers`` guard and costs two lookups)."""
    import inspect

    from repro.core.blocks import BlockManager
    from repro.sim.trace import TraceBus
    from repro.telemetry import SPAN_KINDS, TelemetryConfig, TelemetrySession
    from repro.sim.engine import Simulator

    assert TelemetryConfig().spans is False
    parameters = inspect.signature(BlockManager).parameters
    assert parameters["trace"].default is None
    assert parameters["clock"].default is None

    bus = TraceBus()
    for kind in SPAN_KINDS:
        assert not bus.has_subscribers(kind)

    # A default session attaches no collector either.
    session = TelemetrySession(Simulator(), bus)
    assert session.spans is None
    assert not bus.has_subscribers("span.block_open")
    session.finish()


def test_golden_file_is_byte_identical_when_regenerated():
    """With all churn and corruption knobs at their defaults, re-measuring
    every anchor reproduces ``experiments/golden.json`` byte for byte —
    zero behaviour drift from the lifecycle or integrity machinery."""
    regenerated = json.dumps(measure_all(), indent=2, sort_keys=True) + "\n"
    assert regenerated == GOLDEN_PATH.read_text()


def test_policy_knobs_default_off():
    """The decision-hook machinery must be invisible unless asked for:
    senders are born without a hook and plain runs delegate nothing."""
    import inspect

    from repro.experiments.runner import run_transfer
    from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs

    assert (
        inspect.signature(run_transfer).parameters["policy"].default is None
    )
    case = next(c for c in TABLE1_CASES if c.case_id == 1)
    result = run_transfer(
        "fmtcp", table1_path_configs(case), duration_s=2.0, seed=1
    )
    assert result.extras["decisions_delegated"] == 0


def test_paper_eat_policy_matches_golden_byte_identically():
    """Algorithm 1 routed through the decision hook reproduces every
    FMTCP golden anchor *exactly* (==, not approx): the hook is free."""
    for protocol, case_id, duration_s, seed in ANCHORS:
        if protocol != "fmtcp":
            continue
        from repro.experiments.runner import run_transfer
        from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs

        case = next(c for c in TABLE1_CASES if c.case_id == case_id)
        result = run_transfer(
            "fmtcp",
            table1_path_configs(case),
            duration_s=duration_s,
            seed=seed,
            policy="paper-eat",
        )
        key = f"{protocol}/case{case_id}/{duration_s:g}s/seed{seed}"
        measured = {
            "total_mbytes": result.summary["total_mbytes"],
            "blocks": result.summary["blocks"],
            "mean_block_delay_ms": result.summary["mean_block_delay_ms"],
        }
        for metric, expected in GOLDEN[key].items():
            assert measured[metric] == expected, f"{key}:{metric} drifted"
        assert result.extras["decisions_delegated"] > 0


def test_recovery_knobs_default_off():
    """The crash-recovery machinery must be invisible unless asked for:
    connections are born at epoch/frontier zero with no resume state, the
    RNG registry's epoch 0 derives the exact pre-epoch seed layout, and
    the randomized chaos scenarios never draw crash events (which would
    shift every downstream RNG draw and break old seeds)."""
    import inspect

    from repro.core.blocks import BlockManager
    from repro.core.connection import FmtcpConnection
    from repro.faults import CRASH_KINDS, FaultScenario
    from repro.mptcp.connection import MptcpConnection
    from repro.mptcp.recv_buffer import ReorderBuffer
    from repro.sim.rng import RngStreams

    assert inspect.signature(FmtcpConnection).parameters["resume"].default is None
    assert inspect.signature(MptcpConnection).parameters["resume"].default is None
    assert inspect.signature(BlockManager).parameters["start_block_id"].default == 0
    assert inspect.signature(ReorderBuffer).parameters["start_seq"].default == 0
    assert inspect.signature(RngStreams).parameters["epoch"].default == 0

    # Epoch 0 must reproduce the pre-epoch stream derivation exactly.
    assert (
        RngStreams(17).get("loss:path0").random()
        == RngStreams(17, epoch=0).get("loss:path0").random()
    )

    # The random chaos generator's kind pool must stay crash-free.
    for seed in range(1, 20):
        scenario = FaultScenario.random(seed)
        assert not scenario.has_endpoint_faults
        assert all(e.kind not in CRASH_KINDS for e in scenario.events)


def test_trace_knobs_default_off():
    """The trace-replay machinery must be invisible unless asked for: no
    link is born with a player attached, scenarios without trace events
    never import repro.traces, and the randomized chaos scenarios never
    draw trace events (which would shift every downstream RNG draw and
    break old seeds)."""
    import inspect

    from repro.faults import TRACE_KINDS, FaultScenario
    from repro.net.topology import PathConfig, build_two_path_network
    from repro.sim.rng import RngStreams

    # Trace replay rides the injector; a fresh injector has no players.
    configs = [PathConfig(bandwidth_bps=4e6, delay_s=0.02) for __ in range(2)]
    network, paths = build_two_path_network(configs, rng=RngStreams(1))
    scenario = FaultScenario("plain", [])
    injector = scenario.apply(network.sim, paths)
    assert injector._players == {}
    assert not scenario.has_trace

    # The random chaos generator's kind pool must stay trace-free.
    for seed in range(1, 20):
        random_scenario = FaultScenario.random(seed)
        assert not random_scenario.has_trace
        assert all(e.kind not in TRACE_KINDS for e in random_scenario.events)

    # run_traces defaults must not leak into the shared harnesses: the
    # chaos/corruption harness signatures carry no trace parameters.
    from repro.faults.chaos import run_chaos
    from repro.faults.corruption import run_corruption

    for harness in (run_chaos, run_corruption):
        assert "trace_spec" not in inspect.signature(harness).parameters
