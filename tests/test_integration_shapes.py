"""Comparative integration tests: the paper's qualitative claims.

These are the reproduction's acceptance tests. Each asserts a *shape*
from Section V — who wins, in which direction metrics move — at reduced
scale (short runs, fixed seeds) so the full suite stays fast. The
benchmark harness runs the same experiments at paper scale.
"""

import pytest

from repro.experiments.figures import run_figure4
from repro.experiments.runner import run_transfer
from repro.metrics.stats import mean
from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs

DURATION = 20.0
SEED = 1


def run_pair(case, duration=DURATION, seed=SEED):
    results = {}
    for protocol in ("fmtcp", "mptcp"):
        results[protocol] = run_transfer(
            protocol, table1_path_configs(case), duration_s=duration, seed=seed
        )
    return results


@pytest.fixture(scope="module")
def case1_pair():
    return run_pair(TABLE1_CASES[0])


@pytest.fixture(scope="module")
def case4_pair():
    return run_pair(TABLE1_CASES[3])


# ----------------------------------------------------------------------
# Fig. 3 shapes.
# ----------------------------------------------------------------------
def test_fmtcp_beats_mptcp_on_highly_lossy_pair(case4_pair):
    assert (
        case4_pair["fmtcp"].summary["total_mbytes"]
        > 1.3 * case4_pair["mptcp"].summary["total_mbytes"]
    )


def test_mptcp_degrades_sharply_with_subflow2_loss(case1_pair, case4_pair):
    """Paper: up to ~60 % goodput drop from case 1 to case 4."""
    drop = 1 - (
        case4_pair["mptcp"].summary["total_mbytes"]
        / case1_pair["mptcp"].summary["total_mbytes"]
    )
    assert drop > 0.30


def test_fmtcp_degrades_only_slightly(case1_pair, case4_pair):
    drop = 1 - (
        case4_pair["fmtcp"].summary["total_mbytes"]
        / case1_pair["fmtcp"].summary["total_mbytes"]
    )
    assert drop < 0.25


def test_goodput_gap_widens_with_loss(case1_pair, case4_pair):
    ratio1 = (
        case1_pair["fmtcp"].summary["total_mbytes"]
        / case1_pair["mptcp"].summary["total_mbytes"]
    )
    ratio4 = (
        case4_pair["fmtcp"].summary["total_mbytes"]
        / case4_pair["mptcp"].summary["total_mbytes"]
    )
    assert ratio4 > ratio1


# ----------------------------------------------------------------------
# Fig. 5/6 shapes.
# ----------------------------------------------------------------------
def test_fmtcp_block_delay_lower_under_loss(case4_pair):
    assert (
        case4_pair["fmtcp"].mean_block_delay_ms
        < case4_pair["mptcp"].mean_block_delay_ms
    )


def test_fmtcp_jitter_lower_under_loss(case4_pair):
    assert case4_pair["fmtcp"].jitter_ms < case4_pair["mptcp"].jitter_ms


def test_mptcp_delay_grows_with_loss(case1_pair, case4_pair):
    assert (
        case4_pair["mptcp"].mean_block_delay_ms
        > case1_pair["mptcp"].mean_block_delay_ms
    )


# ----------------------------------------------------------------------
# Fig. 7 shape: delay spikes.
# ----------------------------------------------------------------------
def test_mptcp_delay_spikes_exceed_fmtcp_spikes(case4_pair):
    """Paper: MPTCP's block delays fluctuate wildly; FMTCP's stay flat.

    Measured as the p95/median ratio, which captures the routine spikes
    of Fig. 7 without being dominated by one-off extreme outliers.
    """
    from repro.metrics.stats import percentile

    fmtcp_delays = case4_pair["fmtcp"].block_delays
    mptcp_delays = case4_pair["mptcp"].block_delays
    fmtcp_spread = percentile(fmtcp_delays, 95) / percentile(fmtcp_delays, 50)
    mptcp_spread = percentile(mptcp_delays, 95) / percentile(mptcp_delays, 50)
    assert mptcp_spread > 1.5 * fmtcp_spread
    assert fmtcp_spread < 1.5


# ----------------------------------------------------------------------
# Fig. 4 shape: loss surge stability.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def surge_results():
    return run_figure4(
        0.35,
        duration_s=60.0,
        surge_start_s=15.0,
        surge_end_s=45.0,
        seed=SEED,
        bin_width_s=5.0,
    )


def _phase_rates(result, start, end):
    return [value for t, value in result.goodput_series if start <= t < end]


def test_fmtcp_retains_more_goodput_during_surge(surge_results):
    fmtcp_during = mean(_phase_rates(surge_results["fmtcp"], 15.0, 45.0))
    mptcp_during = mean(_phase_rates(surge_results["mptcp"], 15.0, 45.0))
    assert fmtcp_during > mptcp_during


def test_fmtcp_keeps_half_its_goodput_during_surge(surge_results):
    before = mean(_phase_rates(surge_results["fmtcp"], 0.0, 15.0))
    during = mean(_phase_rates(surge_results["fmtcp"], 15.0, 45.0))
    assert during > 0.30 * before


def test_both_protocols_recover_after_surge(surge_results):
    for protocol in ("fmtcp", "mptcp"):
        before = mean(_phase_rates(surge_results[protocol], 0.0, 15.0))
        after = mean(_phase_rates(surge_results[protocol], 50.0, 60.0))
        assert after > 0.5 * before
