"""Packet-integrity layer: the simulated CRC must accept every clean
packet and reject every single-bit payload flip.

The hypothesis property is the satellite required by the integrity
tentpole: round-trip acceptance over randomized headers/payloads, and
rejection of *any* single flipped bit — the exact error model the
corruption faults inject.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.integrity import packet_checksum, payload_digest, seal, verify
from repro.net.packet import Packet

header = st.fixed_dictionaries(
    {
        "size": st.integers(min_value=1, max_value=65535),
        "src": st.sampled_from(["a", "b", "client", "router0"]),
        "dst": st.sampled_from(["x", "y", "server", "router1"]),
        "src_port": st.integers(min_value=0, max_value=65535),
        "dst_port": st.integers(min_value=0, max_value=65535),
        "flow_label": st.one_of(st.none(), st.sampled_from(["sf0", "sf1"])),
    }
)
payloads = st.binary(min_size=1, max_size=64)


def _packet(params, payload):
    packet = Packet(
        size=params["size"],
        src=params["src"],
        dst=params["dst"],
        src_port=params["src_port"],
        dst_port=params["dst_port"],
        payload=payload,
        flow_label=params["flow_label"],
    )
    return packet


@settings(max_examples=100, deadline=None)
@given(params=header, payload=payloads)
def test_crc_round_trip_accepts_clean_packets(params, payload):
    packet = seal(_packet(params, payload))
    assert verify(packet)
    # A faithful clone (fresh uid, same wire fields) also verifies: the
    # uid is bookkeeping, not part of the checksum.
    assert verify(packet.clone())


@settings(max_examples=100, deadline=None)
@given(
    params=header,
    payload=payloads,
    bit=st.integers(min_value=0, max_value=8 * 64 - 1),
)
def test_crc_rejects_any_single_bit_flip(params, payload, bit):
    packet = seal(_packet(params, payload))
    bit %= 8 * len(payload)
    damaged = bytearray(payload)
    damaged[bit // 8] ^= 1 << (bit % 8)
    packet.payload = bytes(damaged)
    assert not verify(packet)


def test_unsealed_packet_always_verifies():
    packet = Packet(100, "a", "b", 1, 2, payload=b"data")
    assert packet.checksum is None
    assert verify(packet)


def test_checksum_covers_header_fields():
    packet = seal(Packet(100, "a", "b", 1, 2, payload=b"data"))
    packet.size = 99
    assert not verify(packet)


def test_duck_typed_digest_wins_over_repr():
    class WirePayload:
        def __init__(self, field):
            self.field = field

        def integrity_digest(self):
            return b"wire:" + self.field

    one = Packet(10, "a", "b", 1, 2, payload=WirePayload(b"x"))
    two = Packet(10, "a", "b", 1, 2, payload=WirePayload(b"x"))
    # Same wire fields, different object identities: digests agree.
    assert packet_checksum(one) == packet_checksum(two)
    two.payload.field = b"y"
    assert packet_checksum(one) != packet_checksum(two)


def test_payload_digest_distinguishes_types_and_values():
    cases = [None, b"", b"\x00", 0, 1, -1, False, True, 0.0, "", "0", (0,), [0, 1]]
    digests = [payload_digest(case) for case in cases]
    assert len(set(digests)) == len(digests)
