"""Tests for application-level time-in-system latency tracking."""

import pytest

from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.metrics.latency import AppLatencyCollector, TimestampedSource
from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.workloads.sources import BulkSource, CbrSource
from repro.workloads.video import VbrVideoSource
from tests.conftest import make_two_path


# ----------------------------------------------------------------------
# creation_time_of on the streaming sources.
# ----------------------------------------------------------------------
def test_cbr_creation_time_is_linear_in_offset():
    sim = Simulator()
    source = CbrSource(sim, rate_bps=8000.0)  # 1000 bytes/s
    assert source.creation_time_of(999) == pytest.approx(1.0)
    assert source.creation_time_of(499) == pytest.approx(0.5)


def test_vbr_creation_time_steps_at_frame_boundaries():
    sim = Simulator()
    source = VbrVideoSource(sim, fps=10.0, jitter_fraction=0.0, seed=1)

    class Nop:
        def pump(self):
            pass

    source.attach(Nop())
    sim.run(until=1.0)
    first_frame = source.frame_sizes[0]
    # Bytes of the first frame were created at its emit time (t=0.1).
    assert source.creation_time_of(0) == pytest.approx(0.1)
    assert source.creation_time_of(first_frame - 1) == pytest.approx(0.1)
    # The next byte belongs to the second frame.
    assert source.creation_time_of(first_frame) == pytest.approx(0.2)


def test_timestamped_source_wrapper_stamps_on_grant():
    sim = Simulator()
    wrapped = TimestampedSource(BulkSource(total_bytes=3000), sim)
    sim.schedule(1.5, lambda: None)
    sim.run()
    assert wrapped.pull(1000) == 1000
    assert wrapped.creation_time_of(500) == pytest.approx(1.5)
    assert wrapped.creation_time_of(5000) is None
    assert not wrapped.exhausted  # 2000 bytes left


# ----------------------------------------------------------------------
# End-to-end latency collection.
# ----------------------------------------------------------------------
def run_streaming(protocol, rate_bps=1.6e6, duration=20.0, loss2=0.1):
    network, paths, trace = make_two_path(loss2=loss2)
    source = CbrSource(network.sim, rate_bps=rate_bps)
    collector = AppLatencyCollector(trace, source)
    if protocol == "fmtcp":
        connection = FmtcpConnection(
            network.sim, paths, source, config=FmtcpConfig(), trace=trace,
            rng=RngStreams(9),
        )
    else:
        connection = MptcpConnection(
            network.sim, paths, source, config=MptcpConfig(), trace=trace
        )
    source.attach(connection)
    connection.start()
    network.sim.run(until=duration)
    return collector


def test_latency_samples_collected_and_positive():
    collector = run_streaming("fmtcp")
    assert len(collector.samples) > 100
    assert all(latency > 0 for latency in collector.latencies())
    assert collector.mean_latency_s() < 2.0  # transport keeps up with CBR


def test_stall_fraction_monotone_in_deadline():
    collector = run_streaming("fmtcp")
    fractions = [collector.stall_fraction(d) for d in (0.05, 0.2, 1.0, 5.0)]
    assert fractions == sorted(fractions, reverse=True)
    assert fractions[-1] < 0.05  # nearly everything arrives within 5 s


def test_fmtcp_latency_tail_beats_mptcp():
    fmtcp = run_streaming("fmtcp")
    mptcp = run_streaming("mptcp")
    assert (
        fmtcp.percentile_latency_s(95) < mptcp.percentile_latency_s(95)
    )


def test_empty_collector_degenerates_gracefully():
    trace = TraceBus()
    sim = Simulator()
    collector = AppLatencyCollector(trace, CbrSource(sim, rate_bps=1e6))
    assert collector.mean_latency_s() == 0.0
    assert collector.stall_fraction(1.0) == 1.0
