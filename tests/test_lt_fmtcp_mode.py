"""Tests for FMTCP's LT-code mode (config.code = "lt")."""

import pytest

from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.core.receiver import LtDecoderAdapter
from repro.fountain.lt import LtEncoder
from repro.sim.rng import RngStreams
from repro.workloads.sources import BulkSource, RandomPayloadSource
from tests.conftest import make_two_path


def lt_config(**overrides):
    params = dict(
        coding="real",
        code="lt",
        max_pending_blocks=4,
        symbols_per_block=64,
        symbol_size=128,
    )
    params.update(overrides)
    return FmtcpConfig(**params)


def run_lt(source, loss2=0.0, duration=30.0, config=None, sink=None, seed=5):
    network, paths, trace = make_two_path(loss2=loss2, seed=seed)
    connection = FmtcpConnection(
        network.sim, paths, source, config=config or lt_config(), trace=trace,
        rng=RngStreams(seed), sink=sink,
    )
    connection.start()
    network.sim.run(until=duration)
    return connection


def test_lt_mode_requires_real_coding():
    with pytest.raises(ValueError):
        FmtcpConfig(code="lt", coding="statistical")
    with pytest.raises(ValueError):
        FmtcpConfig(code="quantum")
    with pytest.raises(ValueError):
        FmtcpConfig(code="lt", coding="real", systematic=True)


def test_lt_mode_byte_exact_clean_paths():
    config = lt_config()
    source = RandomPayloadSource(total_bytes=3 * config.block_bytes)
    chunks = {}
    run_lt(source, config=config, sink=lambda b, d: chunks.__setitem__(b, d))
    out = b"".join(chunks[b] for b in sorted(chunks))
    assert out == bytes(source.transcript)


def test_lt_mode_byte_exact_under_loss():
    config = lt_config()
    source = RandomPayloadSource(total_bytes=4 * config.block_bytes + 321)
    chunks = {}
    run_lt(
        source, loss2=0.2, duration=90.0, config=config,
        sink=lambda b, d: chunks.__setitem__(b, d),
    )
    out = b"".join(chunks[b] for b in sorted(chunks))
    assert out == bytes(source.transcript)


def test_lt_overhead_exceeds_rlc():
    """LT's sparse symbols cost more overhead than the dense RLC — the
    coding-complexity/overhead trade the paper's Section III-B discusses."""
    lt_conn = run_lt(BulkSource(), duration=15.0)
    rlc_conn = run_lt(
        BulkSource(), duration=15.0,
        config=FmtcpConfig(
            coding="real", max_pending_blocks=4,
            symbols_per_block=64, symbol_size=128,
        ),
    )
    assert lt_conn.redundancy_ratio() > rlc_conn.redundancy_ratio()
    # Both still make progress.
    assert lt_conn.delivered_blocks > 10
    assert rlc_conn.delivered_blocks > 10


def test_lt_adapter_interface():
    adapter = LtDecoderAdapter(k=8, part_size=4, data_length=32)
    encoder = LtEncoder(bytes(range(32)), k=8, part_size=4)
    assert adapter.independent_symbols == 0
    guard = 0
    while not adapter.is_complete:
        adapter.add_symbol(encoder.next_symbol())
        guard += 1
        assert guard < 500
    assert adapter.independent_symbols == 8
    assert adapter.decode() == bytes(range(32))
