"""Tests for summary statistics and trace-driven metric collectors."""

import pytest

from repro.metrics.collectors import BlockDelayCollector, GoodputMeter, MetricsSuite
from repro.metrics.stats import mean, mean_absolute_difference, percentile, stdev
from repro.sim.trace import TraceBus


# ----------------------------------------------------------------------
# Stats helpers.
# ----------------------------------------------------------------------
def test_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert mean([]) == 0.0


def test_stdev_population():
    assert stdev([2.0, 4.0]) == pytest.approx(1.0)
    assert stdev([5.0]) == 0.0
    assert stdev([]) == 0.0


def test_mean_absolute_difference_jitter():
    assert mean_absolute_difference([1.0, 3.0, 2.0]) == pytest.approx(1.5)
    assert mean_absolute_difference([5.0, 5.0, 5.0]) == 0.0
    assert mean_absolute_difference([1.0]) == 0.0


def test_percentile_interpolation():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)
    assert percentile([], 50) == 0.0
    assert percentile([7.0], 99) == 7.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([1.0], 101)


# ----------------------------------------------------------------------
# GoodputMeter.
# ----------------------------------------------------------------------
def test_goodput_totals_and_average():
    trace = TraceBus()
    meter = GoodputMeter(trace)
    trace.emit(0.5, "conn.delivered", bytes=1000)
    trace.emit(1.5, "conn.delivered", bytes=3000)
    assert meter.total_bytes == 4000
    assert meter.goodput_bps(2.0) == pytest.approx(16000.0)
    assert meter.goodput_mbytes_per_s(2.0) == pytest.approx(0.002)


def test_goodput_series_bins():
    trace = TraceBus()
    meter = GoodputMeter(trace, bin_width_s=1.0)
    trace.emit(0.2, "conn.delivered", bytes=1_000_000)
    trace.emit(0.8, "conn.delivered", bytes=1_000_000)
    trace.emit(2.5, "conn.delivered", bytes=500_000)
    series = meter.series(3.0)
    assert len(series) == 3
    assert series[0] == (0.5, pytest.approx(2.0))
    assert series[1] == (1.5, 0.0)
    assert series[2] == (2.5, pytest.approx(0.5))


def test_goodput_ignores_other_records():
    trace = TraceBus()
    meter = GoodputMeter(trace)
    trace.emit(0.0, "conn.block_done", block_id=0, delay=0.1)
    assert meter.total_bytes == 0


def test_goodput_first_last_delivery():
    trace = TraceBus()
    meter = GoodputMeter(trace)
    trace.emit(1.0, "conn.delivered", bytes=1)
    trace.emit(4.0, "conn.delivered", bytes=1)
    assert meter.first_delivery == 1.0
    assert meter.last_delivery == 4.0


# ----------------------------------------------------------------------
# BlockDelayCollector.
# ----------------------------------------------------------------------
def test_block_delay_sequence_ordered_by_id():
    trace = TraceBus()
    collector = BlockDelayCollector(trace)
    trace.emit(2.0, "conn.block_done", block_id=1, delay=0.2)
    trace.emit(1.0, "conn.block_done", block_id=0, delay=0.1)
    trace.emit(3.0, "conn.block_done", block_id=2, delay=0.4)
    assert collector.delays_in_sequence() == [0.1, 0.2, 0.4]
    assert collector.count == 3


def test_block_delay_statistics():
    trace = TraceBus()
    collector = BlockDelayCollector(trace)
    for block_id, delay in enumerate([0.1, 0.3, 0.2]):
        trace.emit(0.0, "conn.block_done", block_id=block_id, delay=delay)
    assert collector.mean_delay_s() == pytest.approx(0.2)
    assert collector.jitter_s() == pytest.approx(0.15)
    assert collector.delay_percentile_s(100) == pytest.approx(0.3)


def test_metrics_suite_summary_keys():
    trace = TraceBus()
    suite = MetricsSuite(trace)
    trace.emit(0.1, "conn.delivered", bytes=8192)
    trace.emit(0.2, "conn.block_done", block_id=0, delay=0.05)
    summary = suite.summary(1.0)
    for key in (
        "goodput_mbps",
        "goodput_mbytes_per_s",
        "total_mbytes",
        "blocks",
        "mean_block_delay_ms",
        "jitter_ms",
        "delay_p95_ms",
        "delay_max_ms",
    ):
        assert key in summary
    assert summary["blocks"] == 1.0
    assert summary["mean_block_delay_ms"] == pytest.approx(50.0)


def test_bin_width_validation():
    with pytest.raises(ValueError):
        GoodputMeter(TraceBus(), bin_width_s=0.0)
