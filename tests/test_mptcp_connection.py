"""End-to-end tests of the IETF-MPTCP baseline over the simulated network."""

import pytest

from repro.metrics.collectors import MetricsSuite
from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.workloads.sources import BulkSource, RandomPayloadSource
from tests.conftest import make_two_path


def run_mptcp(
    source,
    loss2=0.0,
    duration=30.0,
    config=None,
    sink=None,
    delay2=0.010,
):
    network, paths, trace = make_two_path(loss2=loss2, delay2=delay2)
    metrics = MetricsSuite(trace)
    connection = MptcpConnection(
        network.sim,
        paths,
        source,
        config=config or MptcpConfig(recv_buffer_chunks=64),
        trace=trace,
        sink=sink,
    )
    connection.start()
    network.sim.run(until=duration)
    return network, connection, metrics


def test_clean_paths_deliver_all_bytes_in_order():
    source = RandomPayloadSource(total_bytes=200_000)
    received = bytearray()
    __, connection, __ = run_mptcp(
        source, sink=lambda chunk: received.extend(chunk.payload_bytes)
    )
    assert bytes(received) == bytes(source.transcript)
    assert connection.delivered_bytes == 200_000


def test_lossy_path_still_delivers_exactly_once():
    source = RandomPayloadSource(total_bytes=150_000)
    received = bytearray()
    __, connection, __ = run_mptcp(
        source,
        loss2=0.2,
        duration=120.0,
        sink=lambda chunk: received.extend(chunk.payload_bytes),
    )
    assert bytes(received) == bytes(source.transcript)


def test_retransmissions_happen_only_under_loss():
    clean = run_mptcp(BulkSource(500_000), loss2=0.0, duration=10.0)[1]
    lossy = run_mptcp(BulkSource(500_000), loss2=0.2, duration=10.0)[1]
    assert clean.chunks_retransmitted == 0
    assert lossy.chunks_retransmitted > 0


def test_flow_control_bounds_outstanding_data():
    config = MptcpConfig(recv_buffer_chunks=8)
    __, connection, __ = run_mptcp(BulkSource(), config=config, duration=5.0)
    # Invariant maintained throughout: never more than the buffer
    # outstanding beyond the delivered frontier (checked at end state, and
    # the ReorderBuffer would have raised OverflowError if ever violated).
    assert connection._next_dsn - connection.data_acked <= 8 + 1
    assert connection.reorder_buffer.high_watermark <= 8


def test_block_done_events_carry_increasing_ids():
    network, paths, trace = make_two_path()
    records = []
    trace.subscribe("conn.block_done", records.append)
    connection = MptcpConnection(
        network.sim, paths, BulkSource(), config=MptcpConfig(), trace=trace
    )
    connection.start()
    network.sim.run(until=5.0)
    ids = [record["block_id"] for record in records]
    assert ids == sorted(ids)
    assert ids and ids[0] == 0
    assert all(record["delay"] > 0 for record in records)


def test_goodput_measured_at_receiver():
    __, connection, metrics = run_mptcp(BulkSource(), duration=5.0)
    assert metrics.goodput.total_bytes == connection.delivered_bytes
    assert metrics.goodput.total_bytes > 0


def test_hol_blocking_raises_block_delay():
    """A lossy second path must raise delay vs an all-clean run."""
    __, __, clean_metrics = run_mptcp(BulkSource(), loss2=0.0, duration=20.0)
    __, __, lossy_metrics = run_mptcp(BulkSource(), loss2=0.15, duration=20.0)
    assert (
        lossy_metrics.block_delay.mean_delay_s()
        > clean_metrics.block_delay.mean_delay_s()
    )


def test_app_limited_source_idles_without_error():
    class Dribble:
        def __init__(self):
            self.calls = 0

        def pull(self, max_bytes):
            self.calls += 1
            return 1000 if self.calls <= 3 else 0

    __, connection, __ = run_mptcp(Dribble(), duration=2.0)
    assert connection.delivered_bytes == 3000


def test_reinjection_moves_chunk_after_timeouts():
    config = MptcpConfig(recv_buffer_chunks=64, reinject_after_timeouts=1)
    __, connection, __ = run_mptcp(
        BulkSource(), loss2=0.4, duration=60.0, config=config
    )
    assert connection.chunks_reinjected > 0


def test_orp_reinjects_and_penalises_under_tight_buffer():
    config = MptcpConfig(recv_buffer_chunks=16, opportunistic_retransmission=True)
    __, connection, __ = run_mptcp(
        BulkSource(), loss2=0.25, duration=60.0, config=config
    )
    assert connection.orp_reinjections > 0
    assert connection.orp_penalties == connection.orp_reinjections


def test_orp_preserves_exact_delivery():
    config = MptcpConfig(recv_buffer_chunks=16, opportunistic_retransmission=True)
    source = RandomPayloadSource(total_bytes=150_000)
    received = bytearray()
    __, connection, __ = run_mptcp(
        source, loss2=0.2, duration=120.0, config=config,
        sink=lambda chunk: received.extend(chunk.payload_bytes),
    )
    assert bytes(received) == bytes(source.transcript)


def test_orp_improves_block_delay_on_bad_path():
    base = MptcpConfig(recv_buffer_chunks=32)
    orp = MptcpConfig(recv_buffer_chunks=32, opportunistic_retransmission=True)
    __, __, base_metrics = run_mptcp(BulkSource(), loss2=0.2, duration=30.0, config=base)
    __, __, orp_metrics = run_mptcp(BulkSource(), loss2=0.2, duration=30.0, config=orp)
    assert (
        orp_metrics.block_delay.mean_delay_s()
        <= base_metrics.block_delay.mean_delay_s() * 1.05
    )


def test_single_path_connection_works():
    from repro.net.topology import PathConfig, build_two_path_network
    from repro.sim.rng import RngStreams
    from repro.sim.trace import TraceBus

    trace = TraceBus()
    network, paths = build_two_path_network(
        [PathConfig(bandwidth_bps=8e6, delay_s=0.01)],
        rng=RngStreams(3),
        trace=trace,
    )
    source = RandomPayloadSource(total_bytes=50_000)
    received = bytearray()
    connection = MptcpConnection(
        network.sim,
        paths,
        source,
        trace=trace,
        sink=lambda chunk: received.extend(chunk.payload_bytes),
    )
    connection.start()
    network.sim.run(until=20.0)
    assert bytes(received) == bytes(source.transcript)


def test_empty_paths_rejected():
    from repro.sim.engine import Simulator

    with pytest.raises(ValueError):
        MptcpConnection(Simulator(), [], BulkSource())


def test_lia_congestion_variant_runs():
    config = MptcpConfig(congestion="lia")
    __, connection, metrics = run_mptcp(BulkSource(), duration=5.0, config=config)
    assert metrics.goodput.total_bytes > 0


def test_roundrobin_scheduler_variant_runs():
    config = MptcpConfig(scheduler="roundrobin")
    __, connection, metrics = run_mptcp(BulkSource(), duration=5.0, config=config)
    assert metrics.goodput.total_bytes > 0
