"""Unit tests for the connection-level reorder buffer."""

import pytest

from repro.mptcp.recv_buffer import BufferOverflowError, ReorderBuffer
from repro.sim.trace import TraceBus


def test_in_order_chunks_deliver_immediately():
    buffer = ReorderBuffer(capacity=4)
    assert buffer.insert(0, "a") == [(0, "a")]
    assert buffer.insert(1, "b") == [(1, "b")]
    assert buffer.next_expected == 2


def test_gap_holds_delivery():
    buffer = ReorderBuffer(capacity=4)
    assert buffer.insert(1, "b") == []
    assert buffer.occupancy == 1
    assert buffer.next_expected == 0


def test_filling_gap_releases_run():
    buffer = ReorderBuffer(capacity=4)
    buffer.insert(1, "b")
    buffer.insert(2, "c")
    delivered = buffer.insert(0, "a")
    assert delivered == [(0, "a"), (1, "b"), (2, "c")]
    assert buffer.occupancy == 0
    assert buffer.next_expected == 3


def test_duplicates_counted_and_ignored():
    buffer = ReorderBuffer(capacity=4)
    buffer.insert(0, "a")
    assert buffer.insert(0, "a-again") == []
    buffer.insert(2, "c")
    assert buffer.insert(2, "c-again") == []
    assert buffer.duplicates == 2


def test_advertised_window_shrinks_with_occupancy():
    buffer = ReorderBuffer(capacity=4)
    assert buffer.advertised_window == 4
    buffer.insert(1, "b")
    buffer.insert(2, "c")
    assert buffer.advertised_window == 2


def test_overflow_raises_rather_than_dropping():
    buffer = ReorderBuffer(capacity=2)
    buffer.insert(1, "b")
    buffer.insert(2, "c")
    with pytest.raises(OverflowError):
        buffer.insert(3, "d")


def test_overflow_error_carries_postmortem_state():
    buffer = ReorderBuffer(capacity=2)
    buffer.insert(1, "b")
    buffer.insert(2, "c")
    with pytest.raises(BufferOverflowError) as excinfo:
        buffer.insert(3, "d")
    error = excinfo.value
    assert error.seq == 3
    assert error.next_expected == 0
    assert error.occupancy == 2
    assert error.capacity == 2
    assert "seq 3" in str(error) and "2/2" in str(error)


def test_overflow_emits_trace_record_before_raising():
    trace = TraceBus()
    seen = []
    trace.subscribe("recv.overflow", seen.append)
    buffer = ReorderBuffer(capacity=2, trace=trace, clock=lambda: 3.5)
    buffer.insert(1, "b")
    buffer.insert(2, "c")
    with pytest.raises(BufferOverflowError):
        buffer.insert(3, "d")
    assert len(seen) == 1
    record = seen[0]
    assert record.time == 3.5
    assert record["seq"] == 3
    assert record["occupancy"] == 2
    assert record["capacity"] == 2


def test_overflow_emit_skipped_without_subscribers():
    trace = TraceBus()
    buffer = ReorderBuffer(capacity=1, trace=trace)
    buffer.insert(1, "b")
    # No recv.overflow subscriber: the guard path must still raise.
    with pytest.raises(BufferOverflowError):
        buffer.insert(2, "c")


def test_high_watermark():
    buffer = ReorderBuffer(capacity=8)
    for seq in (1, 2, 3):
        buffer.insert(seq, str(seq))
    buffer.insert(0, "0")
    assert buffer.high_watermark == 3
    assert buffer.occupancy == 0


def test_capacity_validation():
    with pytest.raises(ValueError):
        ReorderBuffer(0)


def test_interleaved_two_stream_arrival():
    """Chunks arriving alternately from two subflows reassemble exactly."""
    buffer = ReorderBuffer(capacity=16)
    order = [0, 4, 1, 5, 2, 6, 3, 7]  # two interleaved runs
    delivered = []
    for seq in order:
        delivered.extend(buffer.insert(seq, seq))
    assert [seq for seq, __ in delivered] == list(range(8))
