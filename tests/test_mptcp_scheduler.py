"""Unit tests for MPTCP subflow schedulers."""

import pytest

from repro.mptcp.scheduler import (
    MinRttScheduler,
    RoundRobinScheduler,
    make_scheduler,
)


class FakeSubflow:
    def __init__(self, subflow_id, srtt, window_space=1):
        self.subflow_id = subflow_id
        self.srtt = srtt
        self.window_space = window_space


def test_minrtt_orders_by_srtt():
    flows = [FakeSubflow(0, 0.3), FakeSubflow(1, 0.1), FakeSubflow(2, 0.2)]
    order = MinRttScheduler().preference_order(flows)
    assert [flow.subflow_id for flow in order] == [1, 2, 0]


def test_minrtt_tie_breaks_by_id():
    flows = [FakeSubflow(1, 0.1), FakeSubflow(0, 0.1)]
    order = MinRttScheduler().preference_order(flows)
    assert [flow.subflow_id for flow in order] == [0, 1]


def test_minrtt_prefers_best_flow_with_space():
    fast = FakeSubflow(0, 0.1, window_space=0)
    slow = FakeSubflow(1, 0.5, window_space=2)
    scheduler = MinRttScheduler()
    # Fast flow has no space, so the slow one is the preferred sender.
    assert scheduler.prefers(slow, [fast, slow])
    assert not scheduler.prefers(fast, [fast, slow])


def test_prefers_false_when_nobody_has_space():
    flows = [FakeSubflow(0, 0.1, 0), FakeSubflow(1, 0.2, 0)]
    assert not MinRttScheduler().prefers(flows[0], flows)


def test_roundrobin_rotates():
    flows = [FakeSubflow(0, 0.1), FakeSubflow(1, 0.9)]
    scheduler = RoundRobinScheduler()
    first = scheduler.preference_order(flows)[0].subflow_id
    second = scheduler.preference_order(flows)[0].subflow_id
    third = scheduler.preference_order(flows)[0].subflow_id
    assert first != second
    assert first == third


def test_roundrobin_ignores_rtt():
    flows = [FakeSubflow(0, 9.9), FakeSubflow(1, 0.001)]
    scheduler = RoundRobinScheduler()
    firsts = {scheduler.preference_order(flows)[0].subflow_id for __ in range(4)}
    assert firsts == {0, 1}


def test_factory():
    assert isinstance(make_scheduler("minrtt"), MinRttScheduler)
    assert isinstance(make_scheduler("roundrobin"), RoundRobinScheduler)
    with pytest.raises(ValueError):
        make_scheduler("blest")
