"""Extension scenarios beyond the paper's two-path evaluation:

three and four subflows, bursty (Gilbert-Elliott) loss, a dead path
(near-total loss), and edge-router topologies — exercising the claim
that nothing in either protocol is hard-wired to two paths.
"""

import pytest

from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.metrics.collectors import MetricsSuite
from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.net.loss import GilbertElliottLoss
from repro.net.topology import PathConfig, build_two_path_network
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.workloads.sources import BulkSource


def build(configs, seed=11, with_edge_routers=False):
    trace = TraceBus()
    network, paths = build_two_path_network(
        configs, rng=RngStreams(seed), trace=trace, with_edge_routers=with_edge_routers
    )
    return network, paths, trace


def run(protocol, configs, duration=15.0, seed=11, with_edge_routers=False):
    network, paths, trace = build(configs, seed, with_edge_routers)
    metrics = MetricsSuite(trace)
    if protocol == "fmtcp":
        connection = FmtcpConnection(
            network.sim, paths, BulkSource(), config=FmtcpConfig(), trace=trace,
            rng=RngStreams(seed),
        )
    else:
        connection = MptcpConnection(
            network.sim, paths, BulkSource(), config=MptcpConfig(), trace=trace
        )
    connection.start()
    network.sim.run(until=duration)
    return connection, metrics


THREE_PATHS = [
    PathConfig(bandwidth_bps=4e6, delay_s=0.020, loss_rate=0.0),
    PathConfig(bandwidth_bps=4e6, delay_s=0.050, loss_rate=0.05),
    PathConfig(bandwidth_bps=4e6, delay_s=0.100, loss_rate=0.10),
]


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
def test_three_paths_deliver(protocol):
    connection, metrics = run(protocol, list(THREE_PATHS))
    assert len(connection.subflows) == 3
    assert metrics.goodput.total_bytes > 500_000
    # All three subflows carried traffic.
    assert all(subflow.packets_sent > 0 for subflow in connection.subflows)


def test_four_paths_fmtcp():
    configs = list(THREE_PATHS) + [
        PathConfig(bandwidth_bps=2e6, delay_s=0.150, loss_rate=0.15)
    ]
    connection, metrics = run("fmtcp", configs)
    assert len(connection.subflows) == 4
    assert metrics.goodput.total_bytes > 500_000


def test_fmtcp_aggregate_exceeds_best_single_path():
    """With three mildly lossy paths, FMTCP aggregates well beyond any one
    path's capacity (loss-heavy paths contribute little under Reno, so
    this scenario keeps losses small)."""
    configs = [
        PathConfig(bandwidth_bps=4e6, delay_s=0.020, loss_rate=0.0),
        PathConfig(bandwidth_bps=4e6, delay_s=0.030, loss_rate=0.01),
        PathConfig(bandwidth_bps=4e6, delay_s=0.040, loss_rate=0.02),
    ]
    connection, metrics = run("fmtcp", configs, duration=20.0)
    single_path_capacity_bytes = 4e6 / 8 * 20.0
    assert metrics.goodput.total_bytes > 1.5 * single_path_capacity_bytes


def test_fmtcp_survives_dead_path():
    """One path at 90 % loss: FMTCP must still make progress on the other."""
    configs = [
        PathConfig(bandwidth_bps=4e6, delay_s=0.050, loss_rate=0.0),
        PathConfig(bandwidth_bps=4e6, delay_s=0.050, loss_rate=0.90),
    ]
    connection, metrics = run("fmtcp", configs, duration=20.0)
    clean_capacity = 4e6 / 8 * 20.0
    assert metrics.goodput.total_bytes > 0.4 * clean_capacity


def test_fmtcp_under_gilbert_elliott_bursts():
    """Bursty losses (the paper's 'bursty packet losses' scenario) decode
    correctly and still leave FMTCP ahead of MPTCP."""
    def configs():
        return [
            PathConfig(bandwidth_bps=4e6, delay_s=0.050, loss_rate=0.0),
            PathConfig(
                bandwidth_bps=4e6,
                delay_s=0.050,
                loss_model=GilbertElliottLoss(
                    p_gb=0.01, p_bg=0.10, loss_good=0.01, loss_bad=0.5
                ),
            ),
        ]

    fmtcp_conn, fmtcp_metrics = run("fmtcp", configs(), duration=30.0)
    mptcp_conn, mptcp_metrics = run("mptcp", configs(), duration=30.0)
    assert fmtcp_metrics.goodput.total_bytes > 0.9 * mptcp_metrics.goodput.total_bytes
    # Mean delay is dominated by standing-queue delay (both protocols fill
    # the drop-tail queue); the burst-loss story shows in the tail and the
    # jitter, where retransmission stalls hit MPTCP.
    assert fmtcp_metrics.block_delay.jitter_s() < mptcp_metrics.block_delay.jitter_s()
    assert (
        fmtcp_metrics.block_delay.delay_percentile_s(95)
        < mptcp_metrics.block_delay.delay_percentile_s(95)
    )


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
def test_edge_router_topology(protocol):
    """Multi-hop paths (src -> router -> dst) work identically."""
    configs = [
        PathConfig(bandwidth_bps=4e6, delay_s=0.030, loss_rate=0.0),
        PathConfig(bandwidth_bps=4e6, delay_s=0.060, loss_rate=0.05),
    ]
    connection, metrics = run(protocol, configs, with_edge_routers=True)
    assert metrics.goodput.total_bytes > 200_000
