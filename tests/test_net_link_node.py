"""Unit tests for links (timing, queueing, loss) and nodes (delivery)."""

import random

import pytest

from repro.net.link import Link
from repro.net.loss import BernoulliLoss
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator


def build_link(sim, bandwidth_bps=8e6, delay_s=0.01, loss_model=None, capacity=10):
    node = Node("dst")
    link = Link(
        sim=sim,
        name="l",
        dst_node=node,
        bandwidth_bps=bandwidth_bps,
        delay_s=delay_s,
        loss_model=loss_model,
        queue=DropTailQueue(capacity),
        rng=random.Random(0),
    )
    return link, node


def make_packet(size=1000, dst_port=5):
    return Packet(size=size, src="src", dst="dst", src_port=1, dst_port=dst_port)


def test_delivery_time_is_serialisation_plus_propagation(sim):
    link, node = build_link(sim, bandwidth_bps=8e6, delay_s=0.01)
    arrivals = []
    node.bind(5, lambda packet: arrivals.append(sim.now))
    link.send(make_packet(size=1000))  # 1000B at 8Mbps = 1ms
    sim.run()
    assert arrivals == pytest.approx([0.001 + 0.01])


def test_back_to_back_packets_serialise(sim):
    link, node = build_link(sim, bandwidth_bps=8e6, delay_s=0.0)
    arrivals = []
    node.bind(5, lambda packet: arrivals.append(sim.now))
    for __ in range(3):
        link.send(make_packet(size=1000))
    sim.run()
    assert arrivals == pytest.approx([0.001, 0.002, 0.003])


def test_propagation_pipelines_across_packets(sim):
    """The wire can hold multiple packets: spacing is the tx time, not RTT."""
    link, node = build_link(sim, bandwidth_bps=8e6, delay_s=0.1)
    arrivals = []
    node.bind(5, lambda packet: arrivals.append(sim.now))
    link.send(make_packet(size=1000))
    link.send(make_packet(size=1000))
    sim.run()
    assert arrivals == pytest.approx([0.101, 0.102])


def test_queue_overflow_drops_and_counts(sim):
    link, node = build_link(sim, bandwidth_bps=8e6, delay_s=0.0, capacity=2)
    received = []
    node.bind(5, lambda packet: received.append(packet))
    for __ in range(5):  # 1 in service + 2 queued + 2 dropped
        link.send(make_packet())
    sim.run()
    assert len(received) == 3
    assert link.packets_dropped_queue == 2


def test_loss_model_drops_packets(sim):
    link, node = build_link(sim, loss_model=BernoulliLoss(0.5))
    received = []
    node.bind(5, lambda packet: received.append(packet))

    def send_next(remaining):
        if remaining:
            link.send(make_packet())
            sim.schedule(0.02, send_next, remaining - 1)

    send_next(400)
    sim.run()
    assert 120 < len(received) < 280
    assert link.packets_dropped_loss == 400 - len(received)


def test_link_counters(sim):
    link, node = build_link(sim)
    node.bind(5, lambda packet: None)
    link.send(make_packet(size=500))
    sim.run()
    assert link.packets_sent == 1
    assert link.packets_delivered == 1
    assert link.bytes_delivered == 500


def test_link_validation(sim):
    with pytest.raises(ValueError):
        Link(sim, "l", Node("d"), bandwidth_bps=0, delay_s=0.0)
    with pytest.raises(ValueError):
        Link(sim, "l", Node("d"), bandwidth_bps=1e6, delay_s=-1.0)


def test_link_validation_rejects_nan_and_inf(sim):
    # `nan <= 0` is False, so a plain sign check would wave NaN through
    # into serialisation arithmetic; the link must reject it explicitly
    # and name itself in the diagnostic.
    nan, inf = float("nan"), float("inf")
    for bad in (nan, inf, -inf):
        with pytest.raises(ValueError, match="'l'"):
            Link(sim, "l", Node("d"), bandwidth_bps=bad, delay_s=0.0)
        with pytest.raises(ValueError, match="'l'"):
            Link(sim, "l", Node("d"), bandwidth_bps=1e6, delay_s=bad)


def test_link_runtime_mutation_rejects_nan_and_inf(sim):
    link = Link(sim, "wire-7", Node("d"), bandwidth_bps=1e6, delay_s=0.01)
    for bad in (float("nan"), float("inf")):
        with pytest.raises(ValueError, match="wire-7"):
            link.set_bandwidth(bad)
        with pytest.raises(ValueError, match="wire-7"):
            link.set_delay(bad)
    # Rejected mutations leave the link untouched.
    assert link.bandwidth_bps == 1e6
    assert link.delay_s == 0.01


# ----------------------------------------------------------------------
# Node behaviour.
# ----------------------------------------------------------------------
def test_node_routes_to_bound_port():
    node = Node("n")
    seen = []
    node.bind(7, seen.append)
    packet = make_packet(dst_port=7)
    node.receive(packet)
    assert seen == [packet]
    assert node.packets_received == 1


def test_node_counts_undeliverable():
    node = Node("n")
    node.receive(make_packet(dst_port=99))
    assert node.packets_undeliverable == 1


def test_node_forwards_along_route(sim):
    link, dst = build_link(sim)
    seen = []
    dst.bind(5, seen.append)
    middle = Node("middle")
    packet = make_packet()
    packet.route = (link,)
    middle.receive(packet)  # should push onto the link, not deliver locally
    sim.run()
    assert len(seen) == 1
    assert middle.packets_forwarded == 1


def test_node_double_bind_rejected():
    node = Node("n")
    node.bind(7, lambda packet: None)
    with pytest.raises(ValueError):
        node.bind(7, lambda packet: None)


def test_node_unbind_then_rebind():
    node = Node("n")
    node.bind(7, lambda packet: None)
    node.unbind(7)
    node.bind(7, lambda packet: None)  # must not raise


def test_allocate_port_skips_bound_ports():
    node = Node("n")
    first = node.allocate_port()
    node.bind(first + 1, lambda packet: None)
    second = node.allocate_port()
    assert second not in (first, first + 1)
