"""Unit tests for loss models."""

import random

import pytest

from repro.net.loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    NoLoss,
    ScheduledLoss,
)


def test_no_loss_never_drops():
    model = NoLoss()
    rng = random.Random(0)
    assert not any(model.should_drop(float(t), rng) for t in range(1000))
    assert model.rate_at(0.0) == 0.0


def test_bernoulli_rate_validation():
    with pytest.raises(ValueError):
        BernoulliLoss(-0.1)
    with pytest.raises(ValueError):
        BernoulliLoss(1.0)


def test_bernoulli_empirical_rate_close_to_nominal():
    model = BernoulliLoss(0.2)
    rng = random.Random(42)
    drops = sum(model.should_drop(0.0, rng) for __ in range(20_000))
    assert abs(drops / 20_000 - 0.2) < 0.02


def test_bernoulli_zero_rate_consumes_no_randomness():
    model = BernoulliLoss(0.0)
    rng = random.Random(1)
    before = rng.getstate()
    assert not model.should_drop(0.0, rng)
    assert rng.getstate() == before


def test_scheduled_loss_picks_segment_by_time():
    model = ScheduledLoss([(0.0, 0.01), (50.0, 0.25), (200.0, 0.01)])
    assert model.rate_at(0.0) == 0.01
    assert model.rate_at(49.999) == 0.01
    assert model.rate_at(50.0) == 0.25
    assert model.rate_at(199.9) == 0.25
    assert model.rate_at(200.0) == 0.01
    assert model.rate_at(1e9) == 0.01


def test_scheduled_loss_unsorted_segments_are_sorted():
    model = ScheduledLoss([(200.0, 0.01), (0.0, 0.05), (50.0, 0.25)])
    assert model.rate_at(10.0) == 0.05
    assert model.rate_at(60.0) == 0.25


def test_scheduled_loss_implicit_lossless_prefix():
    model = ScheduledLoss([(10.0, 0.5)])
    assert model.rate_at(5.0) == 0.0
    assert model.rate_at(10.0) == 0.5


def test_scheduled_loss_empty_rejected():
    with pytest.raises(ValueError):
        ScheduledLoss([])


def test_scheduled_loss_bad_rate_rejected():
    with pytest.raises(ValueError):
        ScheduledLoss([(0.0, 1.5)])


def test_scheduled_loss_empirical_rate_switches():
    model = ScheduledLoss([(0.0, 0.0), (10.0, 0.5)])
    rng = random.Random(3)
    early = sum(model.should_drop(5.0, rng) for __ in range(2000))
    late = sum(model.should_drop(15.0, rng) for __ in range(2000))
    assert early == 0
    assert abs(late / 2000 - 0.5) < 0.05


def test_gilbert_elliott_stationary_fraction():
    model = GilbertElliottLoss(p_gb=0.1, p_bg=0.3)
    assert abs(model.stationary_bad_fraction() - 0.25) < 1e-12


def test_gilbert_elliott_marginal_rate():
    model = GilbertElliottLoss(p_gb=0.1, p_bg=0.3, loss_good=0.0, loss_bad=0.4)
    assert abs(model.rate_at(0.0) - 0.25 * 0.4) < 1e-12


def test_gilbert_elliott_empirical_rate():
    model = GilbertElliottLoss(p_gb=0.05, p_bg=0.2, loss_good=0.01, loss_bad=0.5)
    rng = random.Random(11)
    trials = 50_000
    drops = sum(model.should_drop(0.0, rng) for __ in range(trials))
    assert abs(drops / trials - model.rate_at(0.0)) < 0.01


def test_gilbert_elliott_produces_bursts():
    """Loss events should cluster more than under Bernoulli at equal rate."""
    model = GilbertElliottLoss(p_gb=0.02, p_bg=0.1, loss_good=0.0, loss_bad=0.8)
    rng = random.Random(5)
    outcomes = [model.should_drop(0.0, rng) for __ in range(50_000)]
    rate = sum(outcomes) / len(outcomes)
    # P(loss | previous loss) should clearly exceed the marginal rate.
    follow_loss = [b for a, b in zip(outcomes, outcomes[1:]) if a]
    conditional = sum(follow_loss) / len(follow_loss)
    assert conditional > rate * 2


def _state_run_lengths(model, rng, steps):
    """Observe the chain for ``steps`` packets; return mean sojourn times
    (in packets) of the GOOD and BAD states."""
    runs = {GilbertElliottLoss.GOOD: [], GilbertElliottLoss.BAD: []}
    current_state = model.state
    current_length = 0
    for __ in range(steps):
        model.should_drop(0.0, rng)
        if model.state == current_state:
            current_length += 1
        else:
            if current_length:
                runs[current_state].append(current_length)
            current_state = model.state
            current_length = 1
    means = {}
    for state, lengths in runs.items():
        means[state] = sum(lengths) / len(lengths) if lengths else float("nan")
    return means[GilbertElliottLoss.GOOD], means[GilbertElliottLoss.BAD]


def test_gilbert_elliott_mean_sojourn_times_match_closed_form():
    """Sojourn times are geometric: E[GOOD] = 1/p_gb, E[BAD] = 1/p_bg."""
    p_gb, p_bg = 0.05, 0.25
    model = GilbertElliottLoss(p_gb=p_gb, p_bg=p_bg, loss_bad=0.5)
    good_mean, bad_mean = _state_run_lengths(model, random.Random(17), 200_000)
    assert abs(good_mean - 1.0 / p_gb) / (1.0 / p_gb) < 0.05
    assert abs(bad_mean - 1.0 / p_bg) / (1.0 / p_bg) < 0.05


def test_gilbert_elliott_stationary_rate_across_parameterisations():
    """Empirical loss rate tracks rate_at() over a parameter grid, not
    just one lucky configuration."""
    rng = random.Random(23)
    for p_gb, p_bg, loss_bad in (
        (0.01, 0.3, 0.8),
        (0.1, 0.1, 0.5),
        (0.2, 0.05, 0.3),
    ):
        model = GilbertElliottLoss(p_gb=p_gb, p_bg=p_bg, loss_bad=loss_bad)
        trials = 100_000
        drops = sum(model.should_drop(0.0, rng) for __ in range(trials))
        expected = model.rate_at(0.0)
        assert abs(drops / trials - expected) < 0.01, (
            f"p_gb={p_gb} p_bg={p_bg}: {drops / trials:.4f} vs {expected:.4f}"
        )


def test_gilbert_elliott_validation():
    with pytest.raises(ValueError):
        GilbertElliottLoss(p_gb=1.5, p_bg=0.1)
    with pytest.raises(ValueError):
        GilbertElliottLoss(p_gb=0.1, p_bg=0.1, loss_bad=-0.2)
