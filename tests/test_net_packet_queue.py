"""Unit tests for packets and drop-tail queues."""

import pytest

from repro.net.packet import Packet
from repro.net.queues import DropTailQueue


def make_packet(size=100):
    return Packet(size=size, src="a", dst="b", src_port=1, dst_port=2)


# ----------------------------------------------------------------------
# Packet.
# ----------------------------------------------------------------------
def test_packet_uids_are_unique():
    a, b = make_packet(), make_packet()
    assert a.uid != b.uid


def test_packet_size_validation():
    with pytest.raises(ValueError):
        Packet(size=0, src="a", dst="b", src_port=1, dst_port=2)


def test_packet_route_consumed_in_order():
    packet = make_packet()
    packet.route = ("link0", "link1")
    assert packet.next_link() == "link0"
    assert packet.next_link() == "link1"
    assert packet.next_link() is None


def test_packet_empty_route_delivers_immediately():
    packet = make_packet()
    assert packet.next_link() is None


# ----------------------------------------------------------------------
# DropTailQueue.
# ----------------------------------------------------------------------
def test_queue_fifo_order():
    queue = DropTailQueue(capacity=10)
    packets = [make_packet() for __ in range(3)]
    for packet in packets:
        assert queue.try_enqueue(packet)
    assert [queue.dequeue() for __ in range(3)] == packets


def test_queue_capacity_enforced():
    queue = DropTailQueue(capacity=2)
    assert queue.try_enqueue(make_packet())
    assert queue.try_enqueue(make_packet())
    assert not queue.try_enqueue(make_packet())
    assert queue.drops == 1
    assert len(queue) == 2


def test_queue_dequeue_empty_returns_none():
    assert DropTailQueue().dequeue() is None


def test_queue_high_watermark_tracks_peak():
    queue = DropTailQueue(capacity=10)
    for __ in range(5):
        queue.try_enqueue(make_packet())
    for __ in range(5):
        queue.dequeue()
    assert queue.high_watermark == 5


def test_queue_occupancy_bytes():
    queue = DropTailQueue()
    queue.try_enqueue(make_packet(size=100))
    queue.try_enqueue(make_packet(size=250))
    assert queue.occupancy_bytes == 350


def test_queue_clear():
    queue = DropTailQueue()
    queue.try_enqueue(make_packet())
    queue.clear()
    assert len(queue) == 0


def test_queue_capacity_validation():
    with pytest.raises(ValueError):
        DropTailQueue(capacity=0)
