"""Unit tests for the network container and topology builders."""

import pytest

from repro.net.packet import Packet
from repro.net.topology import Network, PathConfig, build_two_path_network


def test_add_node_and_duplicate_rejected():
    network = Network()
    network.add_node("a")
    with pytest.raises(ValueError):
        network.add_node("a")


def test_add_link_requires_existing_nodes():
    network = Network()
    network.add_node("a")
    with pytest.raises(KeyError):
        network.add_link("a", "missing", 1e6, 0.01)


def test_shortest_route_bfs():
    network = Network()
    for name in "abcd":
        network.add_node(name)
    network.add_duplex_link("a", "b", 1e6, 0.01)
    network.add_duplex_link("b", "c", 1e6, 0.01)
    network.add_duplex_link("c", "d", 1e6, 0.01)
    network.add_duplex_link("a", "d", 1e6, 0.01)  # shortcut
    assert network.shortest_route("a", "d") == ["a", "d"]
    assert network.shortest_route("a", "c") in (["a", "b", "c"], ["a", "d", "c"])
    assert network.shortest_route("a", "a") == ["a"]


def test_shortest_route_unreachable():
    network = Network()
    network.add_node("a")
    network.add_node("b")
    with pytest.raises(ValueError):
        network.shortest_route("a", "b")


def test_make_path_multi_hop_delivery():
    network = Network()
    for name in ("src", "r", "dst"):
        network.add_node(name)
    network.add_duplex_link("src", "r", 8e6, 0.005)
    network.add_duplex_link("r", "dst", 8e6, 0.005)
    path = network.make_path("p", ["src", "r", "dst"])
    assert path.one_way_delay_s == pytest.approx(0.010)

    seen = []
    network.node("dst").bind(9, lambda packet: seen.append(network.sim.now))
    packet = Packet(size=1000, src="src", dst="dst", src_port=1, dst_port=9)
    path.send_forward(packet)
    network.sim.run()
    assert len(seen) == 1
    # two serialisations (1ms each) + two propagations (5ms each)
    assert seen[0] == pytest.approx(0.012)


def test_make_path_reverse_direction():
    network = Network()
    for name in ("src", "dst"):
        network.add_node(name)
    network.add_duplex_link("src", "dst", 8e6, 0.005)
    path = network.make_path("p", ["src", "dst"])
    seen = []
    network.node("src").bind(4, lambda packet: seen.append(packet))
    packet = Packet(size=100, src="dst", dst="src", src_port=9, dst_port=4)
    path.send_reverse(packet)
    network.sim.run()
    assert len(seen) == 1


def test_make_path_too_short_rejected():
    network = Network()
    network.add_node("a")
    with pytest.raises(ValueError):
        network.make_path("p", ["a"])


def test_two_path_builder_shapes():
    configs = [
        PathConfig(bandwidth_bps=4e6, delay_s=0.1, loss_rate=0.0),
        PathConfig(bandwidth_bps=2e6, delay_s=0.05, loss_rate=0.1),
    ]
    network, paths = build_two_path_network(configs)
    assert len(paths) == 2
    assert paths[0].one_way_delay_s == pytest.approx(0.1)
    assert paths[1].one_way_delay_s == pytest.approx(0.05)
    assert paths[1].bottleneck_bandwidth_bps == pytest.approx(2e6)
    assert paths[0].forward_loss_rate() == pytest.approx(0.0)
    assert paths[1].forward_loss_rate() == pytest.approx(0.1)


def test_two_path_builder_with_edge_routers():
    configs = [PathConfig(delay_s=0.05, loss_rate=0.02)] * 2
    network, paths = build_two_path_network(configs, with_edge_routers=True)
    assert len(paths[0].forward_links) == 2
    # Loss lives on the bottleneck hop only.
    assert paths[0].forward_loss_rate() == pytest.approx(0.02)
    # Delay = edge (0.1ms) + bottleneck (50ms).
    assert paths[0].one_way_delay_s == pytest.approx(0.0501)


def test_two_path_builder_end_to_end_delivery():
    configs = [PathConfig(bandwidth_bps=8e6, delay_s=0.01)]
    network, paths = build_two_path_network(configs)
    seen = []
    network.node("dst").bind(3, lambda packet: seen.append(packet))
    packet = Packet(size=1000, src="src", dst="dst", src_port=2, dst_port=3)
    paths[0].send_forward(packet)
    network.sim.run()
    assert seen == [packet]


def test_two_path_builder_empty_rejected():
    with pytest.raises(ValueError):
        build_two_path_network([])


def test_path_config_reverse_lossless_by_default():
    config = PathConfig(loss_rate=0.3)
    network, paths = build_two_path_network([config])
    assert paths[0].forward_links[0].loss_model.rate_at(0.0) == pytest.approx(0.3)
    assert paths[0].reverse_links[0].loss_model.rate_at(0.0) == 0.0


def test_path_config_lossy_reverse():
    config = PathConfig(loss_rate=0.3, lossy_reverse=True)
    network, paths = build_two_path_network([config])
    assert paths[0].reverse_links[0].loss_model.rate_at(0.0) == pytest.approx(0.3)
