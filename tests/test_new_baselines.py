"""Tests for the second-wave additions: the conventional-TCP comparator
in the harness, the HMTP-like stop-and-wait mode, the loss×buffer
heatmap, and trace-replay loss."""

import random

import pytest

from repro.core.config import FmtcpConfig
from repro.experiments.ablations import ablate_allocation
from repro.experiments.heatmap import HeatmapResult, run_heatmap
from repro.experiments.runner import run_transfer
from repro.net.loss import BernoulliLoss, GilbertElliottLoss, ReplayLoss, record_loss_trace
from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs


# ----------------------------------------------------------------------
# protocol="tcp" in the harness.
# ----------------------------------------------------------------------
def test_tcp_protocol_runs_single_best_path():
    result = run_transfer(
        "tcp", table1_path_configs(TABLE1_CASES[3]), duration_s=6.0, seed=1
    )
    assert result.protocol == "tcp"
    assert len(result.subflow_stats) == 1  # one path only
    assert result.summary["total_mbytes"] > 0
    assert "chunks_retransmitted" in result.extras


def test_tcp_picks_the_clean_path():
    """The single-TCP comparator must ride subflow 1 (0 % loss)."""
    result = run_transfer(
        "tcp", table1_path_configs(TABLE1_CASES[3]), duration_s=10.0, seed=1
    )
    assert result.extras["chunks_retransmitted"] == 0
    assert result.subflow_stats[0]["lost_dupack"] == 0


def test_papers_opening_claim_mptcp_worse_than_tcp():
    """Section I: MPTCP can be worse than ordinary TCP (case 4)."""
    tcp = run_transfer(
        "tcp", table1_path_configs(TABLE1_CASES[3]), duration_s=20.0, seed=1
    )
    mptcp = run_transfer(
        "mptcp", table1_path_configs(TABLE1_CASES[3]), duration_s=20.0, seed=1
    )
    assert mptcp.summary["total_mbytes"] < tcp.summary["total_mbytes"]


def test_fmtcp_aggregates_above_tcp_on_good_paths():
    tcp = run_transfer(
        "tcp", table1_path_configs(TABLE1_CASES[0]), duration_s=20.0, seed=1
    )
    fmtcp = run_transfer(
        "fmtcp", table1_path_configs(TABLE1_CASES[0]), duration_s=20.0, seed=1
    )
    assert fmtcp.summary["total_mbytes"] > tcp.summary["total_mbytes"]


# ----------------------------------------------------------------------
# Stop-and-wait (HMTP-like) allocation.
# ----------------------------------------------------------------------
def test_stopwait_mode_accepted_and_runs():
    config = FmtcpConfig(allocation="stopwait")
    result = run_transfer(
        "fmtcp",
        table1_path_configs(TABLE1_CASES[3]),
        duration_s=6.0,
        seed=1,
        fmtcp_config=config,
    )
    assert result.extras["blocks_decoded"] > 0


def test_stopwait_wastes_bandwidth_vs_eat():
    """The paper's Section II criticism of HMTP, quantified."""
    results = ablate_allocation(case_id=4, duration_s=10.0, seed=1)
    assert set(results) == {"eat", "greedy", "stopwait"}
    assert (
        results["stopwait"].extras["redundancy_ratio"]
        > 3 * results["eat"].extras["redundancy_ratio"]
    )
    assert (
        results["eat"].summary["goodput_mbytes_per_s"]
        > 2 * results["stopwait"].summary["goodput_mbytes_per_s"]
    )


def test_unknown_allocation_mode_rejected():
    with pytest.raises(ValueError):
        FmtcpConfig(allocation="psychic")


# ----------------------------------------------------------------------
# Heatmap.
# ----------------------------------------------------------------------
def test_heatmap_grid_complete():
    result = run_heatmap(
        loss_rates=(0.05, 0.15), pending_blocks=(8, 16), duration_s=5.0
    )
    assert len(result.ratios) == 4
    assert all(ratio > 0 for ratio in result.ratios.values())


def test_heatmap_render_shape():
    result = HeatmapResult(loss_rates=[0.1], pending_blocks=[8, 16])
    result.ratios = {(0.1, 8): 0.95, (0.1, 16): 2.5}
    lines = result.render()
    assert len(lines) == 3  # legend + header + one row
    assert "##" in lines[2] and "- " in lines[2]


def test_heatmap_glyph_buckets():
    result = HeatmapResult(loss_rates=[], pending_blocks=[])
    assert result.glyph(0.5) == "--"
    assert result.glyph(1.05) == "≈ "
    assert result.glyph(1.2) == "+ "
    assert result.glyph(3.0) == "##"


# ----------------------------------------------------------------------
# Replay loss.
# ----------------------------------------------------------------------
def test_replay_loss_replays_exact_sequence():
    model = ReplayLoss([True, False, True])
    rng = random.Random(0)
    assert [model.should_drop(0.0, rng) for __ in range(3)] == [True, False, True]
    assert not model.should_drop(0.0, rng)  # exhausted -> pass-through
    assert model.exhausted


def test_replay_loss_repeat_mode():
    model = ReplayLoss([True, False], repeat=True)
    rng = random.Random(0)
    outcomes = [model.should_drop(0.0, rng) for __ in range(6)]
    assert outcomes == [True, False] * 3
    assert not model.exhausted


def test_replay_loss_reset_and_rate():
    model = ReplayLoss([True, True, False, False])
    assert model.rate_at(0.0) == pytest.approx(0.5)
    rng = random.Random(0)
    model.should_drop(0.0, rng)
    model.reset()
    assert model.should_drop(0.0, rng) is True


def test_record_loss_trace_from_models():
    trace = record_loss_trace(BernoulliLoss(0.3), 5000, rng=random.Random(1))
    assert len(trace) == 5000
    assert 0.25 < sum(trace) / len(trace) < 0.35
    bursty = record_loss_trace(
        GilbertElliottLoss(p_gb=0.05, p_bg=0.2, loss_bad=0.8), 1000,
        rng=random.Random(2),
    )
    replay = ReplayLoss(bursty)
    rng = random.Random(9)  # rng irrelevant: replay is deterministic
    assert [replay.should_drop(0.0, rng) for __ in range(1000)] == bursty


def test_replay_gives_identical_adversity_to_both_protocols():
    """With the same recorded trace on subflow 2, both protocols face the
    exact same drops — loss counts at the link must match."""
    from repro.net.topology import PathConfig

    trace = record_loss_trace(BernoulliLoss(0.15), 100_000, rng=random.Random(3))

    def configs():
        return [
            PathConfig(bandwidth_bps=4e6, delay_s=0.05, loss_rate=0.0),
            PathConfig(bandwidth_bps=4e6, delay_s=0.05, loss_model=ReplayLoss(trace)),
        ]

    for protocol in ("fmtcp", "mptcp"):
        result = run_transfer(protocol, configs(), duration_s=8.0, seed=1)
        assert result.summary["total_mbytes"] > 0


def test_replay_validation():
    with pytest.raises(ValueError):
        ReplayLoss([])
    with pytest.raises(ValueError):
        record_loss_trace(BernoulliLoss(0.1), 0)
