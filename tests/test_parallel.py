"""Tests for the parallel experiment executor."""

import os

import pytest

from repro.experiments.parallel import TransferJob, default_workers, run_jobs
from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs


def make_jobs(n=3, duration=3.0):
    return [
        TransferJob(
            protocol="fmtcp",
            path_configs=table1_path_configs(TABLE1_CASES[index % 8]),
            duration_s=duration,
            seed=index + 1,
        )
        for index in range(n)
    ]


def test_serial_execution_returns_in_order():
    jobs = make_jobs(3)
    results = run_jobs(jobs, workers=1)
    assert [result.seed for result in results] == [1, 2, 3]
    assert all(result.summary["total_mbytes"] > 0 for result in results)


def test_parallel_matches_serial_bit_for_bit():
    jobs = make_jobs(4, duration=2.0)
    serial = run_jobs(jobs, workers=1)
    parallel = run_jobs(make_jobs(4, duration=2.0), workers=2)
    for a, b in zip(serial, parallel):
        assert a.summary == b.summary
        assert a.block_delays == b.block_delays


def test_single_job_short_circuits_pool():
    results = run_jobs(make_jobs(1), workers=8)
    assert len(results) == 1


def test_kwargs_forwarded():
    job = TransferJob(
        protocol="mptcp",
        path_configs=table1_path_configs(TABLE1_CASES[0]),
        duration_s=2.0,
        kwargs={"collect_series": True, "bin_width_s": 1.0},
    )
    (result,) = run_jobs([job], workers=1)
    assert len(result.goodput_series) == 2


def test_default_workers_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "4")
    assert default_workers() == 4
    monkeypatch.setenv("REPRO_WORKERS", "junk")
    assert default_workers() == 1
    monkeypatch.delenv("REPRO_WORKERS")
    assert default_workers() == 1


def test_default_workers_zero_means_one_per_core(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "0")
    assert default_workers() == (os.cpu_count() or 1)


def test_default_workers_clamps_negatives(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "-3")
    assert default_workers() == 1
    monkeypatch.setenv("REPRO_WORKERS", "-1")
    assert default_workers() == 1


def test_table1_suite_parallel_consistency(monkeypatch):
    """The memoised Table I suite must be identical serial vs parallel."""
    from repro.experiments.figures import run_table1_suite

    serial = run_table1_suite(
        duration_s=2.5, seed=42, cases=TABLE1_CASES[:2], use_cache=False
    )
    monkeypatch.setenv("REPRO_WORKERS", "2")
    parallel = run_table1_suite(
        duration_s=2.5, seed=42, cases=TABLE1_CASES[:2], use_cache=False
    )
    for protocol in ("fmtcp", "mptcp"):
        for a, b in zip(serial.results[protocol], parallel.results[protocol]):
            assert a.summary == b.summary
