"""SchedulingEnv: the reset()/step() loop over the FMTCP simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policy import (
    HEADER_OBS_FIELDS,
    OBS_VERSION,
    SUBFLOW_OBS_FIELDS,
    EnvConfig,
    RewardConfig,
    SchedulingEnv,
    make_policy,
    observation_names,
)


def make_env(**overrides):
    overrides.setdefault("duration_s", 2.0)
    overrides.setdefault("epoch_s", 0.25)
    return SchedulingEnv(EnvConfig(**overrides))


def run_episode(env, policy_name=None, seed=1):
    """Roll one episode; returns (observations, rewards, infos)."""
    if policy_name is not None:
        env.attach_policy(make_policy(policy_name))
    env.config.seed = seed
    observations = [env.reset()]
    rewards, infos = [], []
    done = False
    while not done:
        obs, reward, done, info = env.step()
        observations.append(obs)
        rewards.append(reward)
        infos.append(info)
    env.close()
    return observations, rewards, infos


def test_observation_layout_matches_names():
    env = make_env()
    obs = env.reset()
    names = env.observation_names()
    assert len(obs) == len(names)
    assert len(names) == len(HEADER_OBS_FIELDS) + 2 * len(SUBFLOW_OBS_FIELDS)
    assert names[: len(HEADER_OBS_FIELDS)] == list(HEADER_OBS_FIELDS)
    assert names[len(HEADER_OBS_FIELDS)] == "subflow0.present"
    env.close()


def test_observation_names_helper_padding():
    assert len(observation_names(3)) == len(HEADER_OBS_FIELDS) + 3 * len(
        SUBFLOW_OBS_FIELDS
    )


def test_episode_runs_to_duration_and_delivers():
    env = make_env(duration_s=2.0)
    observations, rewards, infos = run_episode(env)
    # 2.0 s / 0.25 s epochs = 8 steps.
    assert len(rewards) == 8
    assert infos[-1]["t"] == pytest.approx(2.0)
    assert infos[-1]["obs_version"] == OBS_VERSION
    assert infos[-1]["delivered_bytes"] > 0
    # Goodput-dominated reward: positive overall.
    assert sum(rewards) > 0


def test_step_after_done_raises():
    env = make_env(duration_s=0.5)
    run_episode(env)
    env2 = make_env(duration_s=0.5)
    env2.reset()
    done = False
    while not done:
        __, __, done, __ = env2.step()
    with pytest.raises(RuntimeError):
        env2.step()
    env2.close()


def test_reset_reseeds_and_reproduces():
    env = make_env(duration_s=1.0)
    first = run_episode(env, seed=7)
    env = make_env(duration_s=1.0)
    second = run_episode(env, seed=7)
    assert first[0] == second[0]  # identical observation sequences
    assert first[1] == second[1]  # identical rewards
    env = make_env(duration_s=1.0)
    other = run_episode(env, seed=8)
    assert first[0] != other[0]  # a different seed actually differs


def test_explicit_action_conflicts_with_attached_policy():
    env = make_env()
    env.attach_policy(make_policy("paper-eat"))
    env.reset()
    with pytest.raises(ValueError):
        env.step({"weights": {0: 1.0, 1: 1.0}})
    env.close()


def test_explicit_weight_action_disables_a_path():
    env = make_env(duration_s=2.0)
    env.reset()
    done = False
    while not done:
        __, __, done, __ = env.step({"weights": {0: 1.0, 1: 0.0}})
    one_path = env._last_delivered
    env.reset()
    done = False
    while not done:
        __, __, done, __ = env.step({"weights": {0: 1.0, 1: 1.0}})
    both_paths = env._last_delivered
    env.close()
    assert one_path > 0
    assert both_paths > one_path  # the starved path really was starved


def test_redundancy_action_overrides_margin():
    env = make_env(duration_s=1.0)
    env.reset()
    env.step({"redundancy": 4.0})
    hook = env._action_hook
    assert hook is not None and hook.redundancy == 4.0
    env.step({"redundancy": None})
    assert hook.redundancy is None
    env.close()


def test_block_delay_penalty_reduces_reward():
    plain = make_env(duration_s=2.0, reward=RewardConfig(block_delay_penalty=0.0))
    penal = make_env(duration_s=2.0, reward=RewardConfig(block_delay_penalty=5.0))
    __, plain_rewards, __ = run_episode(plain, seed=3)
    __, penal_rewards, __ = run_episode(penal, seed=3)
    assert sum(penal_rewards) < sum(plain_rewards)


def test_config_and_overrides_are_exclusive():
    with pytest.raises(ValueError):
        SchedulingEnv(EnvConfig(), duration_s=1.0)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=1, max_value=10_000))
def test_observations_deterministic_across_repeated_rollouts(seed):
    """Same seed, same policy => byte-identical observation stream.

    The ISSUE's determinism property: repeated rollouts may not diverge,
    whatever the seed, or trajectories and golden comparisons are
    meaningless.
    """
    runs = []
    for __ in range(2):
        env = make_env(duration_s=1.0)
        env.attach_policy(make_policy("egreedy-redundancy"))
        env.config.seed = seed
        obs = [env.reset()]
        rewards = []
        done = False
        while not done:
            observation, reward, done, __info = env.step()
            obs.append(observation)
            rewards.append(reward)
        env.close()
        runs.append((obs, rewards))
    assert runs[0] == runs[1]
