"""Policy baselines and the sender decision hook."""

import pytest

from repro.core.allocation import AllocationResult
from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.net.topology import PathConfig, build_two_path_network
from repro.policy import (
    POLICIES,
    EpsilonGreedyRedundancyPolicy,
    PaperEATPolicy,
    RoundRobinPolicy,
    WeightedRTTPolicy,
    make_policy,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.workloads.sources import BulkSource

PATHS = [
    PathConfig(delay_s=0.02, loss_rate=0.0),
    PathConfig(delay_s=0.05, loss_rate=0.10),
]


def run_with_policy(policy, duration_s=2.0, seed=1, paths=PATHS):
    sim = Simulator()
    rng = RngStreams(seed)
    trace = TraceBus()
    __, built = build_two_path_network(paths, sim=sim, rng=rng, trace=trace)
    connection = FmtcpConnection(
        sim=sim,
        paths=built,
        source=BulkSource(),
        config=FmtcpConfig(),
        trace=trace,
        rng=rng,
    )
    if policy is not None:
        policy.reset(seed)
        connection.sender.set_decision_hook(policy.decide)
    connection.start()
    sim.run(until=duration_s)
    connection.close()
    return connection


def test_registry_and_factory():
    assert set(POLICIES) == {
        "paper-eat",
        "roundrobin",
        "weighted-rtt",
        "egreedy-redundancy",
    }
    for name in POLICIES:
        policy = make_policy(name)
        assert policy.name == name


def test_make_policy_unknown_name_lists_available():
    with pytest.raises(ValueError) as excinfo:
        make_policy("nope")
    message = str(excinfo.value)
    assert "unknown policy 'nope'" in message
    for name in POLICIES:
        assert name in message


def test_make_policy_forwards_kwargs():
    policy = make_policy("egreedy-redundancy", epsilon=0.5)
    assert policy.epsilon == 0.5
    with pytest.raises(ValueError):
        make_policy("egreedy-redundancy", epsilon=1.5)


def test_hook_default_off_and_counts_delegations():
    plain = run_with_policy(None)
    assert plain.sender.decision_hook is None
    assert plain.sender.decisions_delegated == 0
    hooked = run_with_policy(PaperEATPolicy())
    assert hooked.sender.decisions_delegated > 0


def test_paper_eat_policy_is_byte_identical():
    """The hook itself must cost nothing: same symbols, same bytes."""
    for seed in (1, 2):
        plain = run_with_policy(None, seed=seed)
        hooked = run_with_policy(PaperEATPolicy(), seed=seed)
        assert hooked.sender.symbols_sent == plain.sender.symbols_sent
        assert hooked.delivered_bytes == plain.delivered_bytes
        assert (
            hooked.receiver.blocks_decoded == plain.receiver.blocks_decoded
        )


def test_roundrobin_balances_symbol_shares():
    connection = run_with_policy(RoundRobinPolicy(), duration_s=3.0)
    sent = [subflow.packets_sent for subflow in connection.subflows]
    assert min(sent) > 0
    # Equal-share policy: neither path may dominate despite the loss gap.
    assert max(sent) / min(sent) < 1.5


def test_weighted_rtt_prefers_fast_path():
    fast_slow = [
        PathConfig(delay_s=0.01, loss_rate=0.0),
        PathConfig(delay_s=0.20, loss_rate=0.0),
    ]
    connection = run_with_policy(
        WeightedRTTPolicy(), duration_s=3.0, paths=fast_slow
    )
    fast, slow = [subflow.packets_sent for subflow in connection.subflows]
    assert fast > slow  # 1/SRTT weighting feeds the 10 ms path more
    assert slow > 0  # ... without starving the slow one outright


def test_egreedy_bandit_learns_and_acts():
    policy = EpsilonGreedyRedundancyPolicy(epsilon=0.0)
    connection = run_with_policy(policy, duration_s=1.0)
    assert connection.sender.decisions_delegated > 0
    # Greedy (ε=0) credit assignment: good rewards pin the arm.
    obs = [0.0]
    policy.on_epoch(obs, reward=0.0)
    arms_before = dict(policy._arm_of)
    for __ in range(5):
        policy.on_epoch(obs, reward=1.0)
    assert policy._arm_of == arms_before  # stable under constant reward
    action = policy.action()
    assert action["mode"] == "egreedy"
    assert set(action["loss_inflation"]) == {"0", "1"}


def test_egreedy_reset_reproducibility():
    first = EpsilonGreedyRedundancyPolicy(epsilon=1.0)
    second = EpsilonGreedyRedundancyPolicy(epsilon=1.0)
    for policy in (first, second):
        policy.reset(42)
        policy._ensure_path(0)
        policy._ensure_path(1)
    trace_a = [first.on_epoch([0.0], 0.1) for __ in range(10)]
    trace_b = [second.on_epoch([0.0], 0.1) for __ in range(10)]
    assert trace_a == trace_b


def test_policy_can_decline_an_opportunity():
    class RefuseAll(PaperEATPolicy):
        def decide(self, request):
            return AllocationResult()

    connection = run_with_policy(RefuseAll(), duration_s=1.0)
    assert connection.sender.symbols_sent == 0
    assert connection.delivered_bytes == 0
    assert connection.sender.decisions_delegated > 0
