"""Rollout batching: determinism, JSONL trajectories, reports."""

import json

import pytest

from repro.policy import (
    OBS_VERSION,
    PolicyReport,
    RolloutJob,
    compare_policies,
    run_rollout,
    run_rollouts,
    summarize_rollouts,
    write_trajectories,
)

FAST = dict(duration_s=1.5, epoch_s=0.25)


def test_run_rollout_shapes():
    result = run_rollout(RolloutJob(policy="paper-eat", seed=1, **FAST))
    assert result.obs_version == OBS_VERSION
    assert len(result.steps) == 6  # 1.5 s / 0.25 s
    assert result.goodput_mbytes > 0
    assert result.blocks_done > 0
    assert result.mean_block_delay_ms > 0
    assert result.steps[0].action == {"mode": "eat"}


def test_parallel_results_bit_identical_to_serial():
    jobs = [
        RolloutJob(policy=policy, seed=seed, **FAST)
        for policy in ("paper-eat", "egreedy-redundancy")
        for seed in (1, 2)
    ]
    serial = run_rollouts(jobs, workers=1)
    parallel = run_rollouts(jobs, workers=4)
    assert [r.policy for r in parallel] == [j.policy for j in jobs]  # job order
    for a, b in zip(serial, parallel):
        assert a.trajectory_lines() == b.trajectory_lines()
        assert a.total_reward == b.total_reward
        assert a.goodput_mbytes == b.goodput_mbytes


def test_trajectory_jsonl_round_trips(tmp_path):
    results = run_rollouts(
        [RolloutJob(policy="roundrobin", seed=s, **FAST) for s in (1, 2)],
        workers=1,
    )
    out = tmp_path / "traj.jsonl"
    lines = write_trajectories(results, str(out))
    text = out.read_text().splitlines()
    assert lines == len(text) == sum(len(r.steps) for r in results)
    records = [json.loads(line) for line in text]
    for record in records:
        assert record["policy"] == "roundrobin"
        assert record["obs_version"] == OBS_VERSION
        assert isinstance(record["obs"], list)
        assert isinstance(record["action"], dict)
    # Steps are self-indexed per episode, restarting at each seed.
    assert [r["step"] for r in records[: len(results[0].steps)]] == list(
        range(len(results[0].steps))
    )


def test_summarize_rollouts_validates_batches():
    with pytest.raises(ValueError):
        summarize_rollouts([])
    mixed = [
        run_rollout(RolloutJob(policy="paper-eat", seed=1, **FAST)),
        run_rollout(RolloutJob(policy="roundrobin", seed=1, **FAST)),
    ]
    with pytest.raises(ValueError):
        summarize_rollouts(mixed)
    report = summarize_rollouts(mixed[:1])
    assert isinstance(report, PolicyReport)
    assert report.seeds == [1]
    assert report.goodput_mbytes_min == report.goodput_mbytes_max
    as_dict = report.to_dict()
    assert as_dict["policy"] == "paper-eat"


def test_compare_policies_orders_reports_by_input():
    reports = compare_policies(
        ["paper-eat", "roundrobin"], seeds=(1, 2), **FAST
    )
    assert [report.policy for report in reports] == ["paper-eat", "roundrobin"]
    for report in reports:
        assert report.seeds == [1, 2]
        assert report.case_id == 4
    eat, rr = reports
    # Quality-aware allocation beats blind equal shares on the lossy case.
    assert eat.goodput_mbytes_mean > rr.goodput_mbytes_mean
