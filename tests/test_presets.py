"""Tests for the access-technology path presets."""

import pytest

from repro.experiments.runner import run_transfer
from repro.workloads.presets import PRESETS, paths_for


def test_all_presets_build_fresh_configs():
    for name, factory in PRESETS.items():
        a, b = factory(), factory()
        assert a is not b, name
        assert a.bandwidth_bps > 0 and a.delay_s >= 0


def test_paths_for_composition():
    configs = paths_for("wifi", "lte", "ethernet")
    assert len(configs) == 3
    assert configs[2].bandwidth_bps == pytest.approx(20e6)


def test_paths_for_unknown_preset():
    with pytest.raises(KeyError):
        paths_for("carrier-pigeon")
    with pytest.raises(ValueError):
        paths_for()


def test_loss_models_are_not_shared_between_calls():
    a = paths_for("wifi")[0]
    b = paths_for("wifi")[0]
    assert a.loss_model is not b.loss_model  # stateful GE chains must differ


def test_satellite_delay_dominates():
    sat = paths_for("satellite")[0]
    others = paths_for("ethernet", "dsl", "wifi", "lte", "3g")
    assert all(sat.delay_s > config.delay_s for config in others)


@pytest.mark.parametrize("pair", [("wifi", "lte"), ("ethernet", "satellite")])
def test_presets_run_end_to_end(pair):
    for protocol in ("fmtcp", "mptcp"):
        result = run_transfer(protocol, paths_for(*pair), duration_s=5.0, seed=1)
        assert result.summary["total_mbytes"] > 0


def test_fmtcp_aggregates_wifi_plus_lte():
    """WiFi + LTE: FMTCP's aggregate must clearly exceed the best single
    path (conventional TCP rides the better leg alone)."""
    fmtcp = run_transfer("fmtcp", paths_for("wifi", "lte"), duration_s=20.0, seed=2)
    tcp = run_transfer("tcp", paths_for("wifi", "lte"), duration_s=20.0, seed=2)
    assert fmtcp.summary["total_mbytes"] > 1.10 * tcp.summary["total_mbytes"]


def test_satellite_leg_is_reno_limited_not_broken():
    """Ethernet + GEO satellite: within 20 s Reno cannot open the 700 KB
    satellite pipe from cwnd 2 (35 RTTs of slow start), so the aggregate
    stays near the ethernet leg — the leg still carries *some* traffic
    and the connection is not destabilised by the 280 ms path."""
    from repro.core.config import FmtcpConfig

    result = run_transfer(
        "fmtcp",
        paths_for("ethernet", "satellite"),
        duration_s=20.0,
        seed=2,
        fmtcp_config=FmtcpConfig(max_pending_blocks=96),
    )
    ethernet_stats, satellite_stats = result.subflow_stats
    assert satellite_stats["packets_sent"] > 100
    assert result.summary["total_mbytes"] > 40.0
