"""Hypothesis-driven end-to-end properties of whole transfers.

Each example draws a random (but bounded) scenario and checks invariants
that must hold for any configuration — the transport-level analogue of
the codec round-trip properties.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.metrics.collectors import MetricsSuite
from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.net.topology import PathConfig, build_two_path_network
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.workloads.sources import BulkSource

scenario = st.fixed_dictionaries(
    {
        "bandwidth": st.sampled_from([2e6, 4e6, 8e6]),
        "delay1": st.sampled_from([0.01, 0.05, 0.1]),
        "delay2": st.sampled_from([0.01, 0.05, 0.15]),
        "loss2": st.sampled_from([0.0, 0.05, 0.15, 0.3]),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


def build(params):
    trace = TraceBus()
    network, paths = build_two_path_network(
        [
            PathConfig(
                bandwidth_bps=params["bandwidth"],
                delay_s=params["delay1"],
                loss_rate=0.0,
            ),
            PathConfig(
                bandwidth_bps=params["bandwidth"],
                delay_s=params["delay2"],
                loss_rate=params["loss2"],
            ),
        ],
        rng=RngStreams(params["seed"]),
        trace=trace,
    )
    return network, paths, trace


@settings(max_examples=12, deadline=None)
@given(params=scenario)
def test_property_fmtcp_delivers_in_order_under_any_scenario(params):
    network, paths, trace = build(params)
    metrics = MetricsSuite(trace)
    delivered = []
    connection = FmtcpConnection(
        network.sim,
        paths,
        BulkSource(),
        config=FmtcpConfig(),
        trace=trace,
        rng=RngStreams(params["seed"]),
        sink=lambda block_id, data: delivered.append(block_id),
    )
    connection.start()
    network.sim.run(until=6.0)
    # In-order delivery, no gaps, no duplicates — regardless of scenario.
    assert delivered == list(range(len(delivered)))
    # Goodput accounting agrees with the sink.
    assert metrics.goodput.total_bytes == connection.receiver.delivered_bytes
    # Something moved (the clean path always exists).
    assert delivered


@settings(max_examples=10, deadline=None)
@given(params=scenario)
def test_property_mptcp_in_order_no_buffer_overflow(params):
    network, paths, trace = build(params)
    connection = MptcpConnection(
        network.sim,
        paths,
        BulkSource(),
        config=MptcpConfig(recv_buffer_chunks=32),
        trace=trace,
    )
    connection.start()
    # ReorderBuffer.insert raises OverflowError on any flow-control breach,
    # so simply completing the run is the assertion.
    network.sim.run(until=6.0)
    assert connection.delivered_bytes > 0
    assert connection.reorder_buffer.high_watermark <= 32


@settings(max_examples=8, deadline=None)
@given(params=scenario)
def test_property_fmtcp_redundancy_bounded(params):
    network, paths, trace = build(params)
    connection = FmtcpConnection(
        network.sim,
        paths,
        BulkSource(),
        config=FmtcpConfig(),
        trace=trace,
        rng=RngStreams(params["seed"]),
    )
    connection.start()
    network.sim.run(until=6.0)
    if connection.receiver.blocks_decoded < 20:
        return  # too little signal on very slow scenarios
    redundancy = connection.redundancy_ratio()
    # Lower bound: cannot decode with fewer symbols than k̂ per block.
    # Upper bound: margin + loss overshoot stays under ~2x even at 30 %
    # loss (the allocator compensates by expectation, not blindly).
    assert 0.95 <= redundancy < 2.0, redundancy
