"""Cross-protocol invariant matrix.

Runs every transport across a grid of path conditions and asserts the
invariants that must hold for *any* of them: liveness (data flows unless
both paths are dead), sane accounting (goodput equals receiver-delivered
bytes; block delays positive and bounded), determinism per seed, and
graceful close. These are the tests that catch a regression in shared
machinery no matter which protocol's logic it enters through.
"""

import pytest

from repro.experiments.runner import PROTOCOLS, run_transfer
from repro.net.loss import GilbertElliottLoss
from repro.net.topology import PathConfig

SCENARIOS = {
    "clean": [
        PathConfig(bandwidth_bps=6e6, delay_s=0.020, loss_rate=0.0),
        PathConfig(bandwidth_bps=6e6, delay_s=0.030, loss_rate=0.0),
    ],
    "asymmetric-loss": [
        PathConfig(bandwidth_bps=6e6, delay_s=0.020, loss_rate=0.0),
        PathConfig(bandwidth_bps=6e6, delay_s=0.030, loss_rate=0.12),
    ],
    "asymmetric-delay": [
        PathConfig(bandwidth_bps=6e6, delay_s=0.010, loss_rate=0.02),
        PathConfig(bandwidth_bps=6e6, delay_s=0.150, loss_rate=0.02),
    ],
    "slow-fat": [
        PathConfig(bandwidth_bps=1e6, delay_s=0.050, loss_rate=0.05),
        PathConfig(bandwidth_bps=12e6, delay_s=0.005, loss_rate=0.0),
    ],
    "bursty": [
        PathConfig(bandwidth_bps=6e6, delay_s=0.020, loss_rate=0.0),
        PathConfig(
            bandwidth_bps=6e6,
            delay_s=0.030,
            loss_model=GilbertElliottLoss(
                p_gb=0.01, p_bg=0.1, loss_good=0.0, loss_bad=0.5
            ),
        ),
    ],
}

DURATION = 8.0


def fresh(name):
    """Scenarios with stateful loss models must be rebuilt per run."""
    if name == "bursty":
        return [
            PathConfig(bandwidth_bps=6e6, delay_s=0.020, loss_rate=0.0),
            PathConfig(
                bandwidth_bps=6e6,
                delay_s=0.030,
                loss_model=GilbertElliottLoss(
                    p_gb=0.01, p_bg=0.1, loss_good=0.0, loss_bad=0.5
                ),
            ),
        ]
    return [
        PathConfig(
            bandwidth_bps=config.bandwidth_bps,
            delay_s=config.delay_s,
            loss_rate=config.loss_rate,
        )
        for config in SCENARIOS[name]
    ]


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_liveness_and_accounting(protocol, scenario):
    result = run_transfer(protocol, fresh(scenario), duration_s=DURATION, seed=11)
    # Liveness: meaningful data moved.
    assert result.summary["total_mbytes"] > 0.2, (protocol, scenario)
    # Accounting: block delays positive and below a sane bound.
    assert all(0 < delay < DURATION for delay in result.block_delays)
    # Goodput consistency between meter and summary.
    assert result.summary["goodput_mbytes_per_s"] == pytest.approx(
        result.summary["total_mbytes"] / DURATION
    )
    # Subflow counters are self-consistent.
    for stats in result.subflow_stats:
        assert stats["packets_acked"] <= stats["packets_sent"]
        assert stats["lost_dupack"] + stats["lost_timeout"] <= stats["packets_sent"]


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_determinism_across_protocols(protocol):
    a = run_transfer(protocol, fresh("asymmetric-loss"), duration_s=5.0, seed=77)
    b = run_transfer(protocol, fresh("asymmetric-loss"), duration_s=5.0, seed=77)
    assert a.summary == b.summary
    assert a.block_delays == b.block_delays


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_multipath_protocols_use_both_paths_when_clean(protocol):
    result = run_transfer(protocol, fresh("clean"), duration_s=DURATION, seed=11)
    if protocol == "tcp":
        assert len(result.subflow_stats) == 1
    else:
        assert all(stats["packets_sent"] > 100 for stats in result.subflow_stats)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_fmtcp_never_collapses(scenario):
    """FMTCP's defining robustness: across the whole matrix it delivers at
    least ~60 % of what the best protocol achieved on that scenario."""
    rates = {
        protocol: run_transfer(
            protocol, fresh(scenario), duration_s=DURATION, seed=11
        ).summary["total_mbytes"]
        for protocol in PROTOCOLS
    }
    best = max(rates.values())
    assert rates["fmtcp"] > 0.6 * best, rates
