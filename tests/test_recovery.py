"""Unit and property tests for the crash-recovery layer.

Covers the checkpoint schema (round-trips, version refusal, consistency
validation), the replayable source, the crash fault kinds, the
reconnection state machine (token handshake, deterministic backoff,
budget exhaustion escalating through the watchdog) and the
snapshot→restore→continuation property: resuming from a checkpoint must
be byte-identical to never having been interrupted.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.connection import FmtcpConnection
from repro.faults.scenario import FaultEvent, FaultScenario
from repro.net.topology import PathConfig, build_two_path_network
from repro.recovery import (
    CHECKPOINT_VERSION,
    ReceiverCheckpoint,
    ReconnectPolicy,
    RecoveryManager,
    SenderCheckpoint,
    resume_state,
    run_recovery,
    snapshot_receiver,
    snapshot_sender,
)
from repro.sim.rng import RngStreams
from repro.workloads.sources import BulkSource, RandomPayloadSource, ReplayableSource


# ----------------------------------------------------------------------
# Checkpoint schema.
# ----------------------------------------------------------------------
def test_sender_checkpoint_round_trip():
    ckpt = SenderCheckpoint(
        protocol="mptcp",
        frontier=17,
        byte_offset=17 * 1400,
        chunk_map=((17, 1400), (18, 900)),
    )
    restored = SenderCheckpoint.from_dict(ckpt.to_dict())
    assert restored == ckpt
    assert ckpt.size_bytes == len(ckpt.to_json().encode())


def test_receiver_checkpoint_round_trip():
    ckpt = ReceiverCheckpoint(protocol="fmtcp", frontier=9, delivered_bytes=9 * 8192)
    assert ReceiverCheckpoint.from_dict(ckpt.to_dict()) == ckpt


def test_checkpoint_version_refusal():
    data = SenderCheckpoint(protocol="fmtcp", frontier=1, byte_offset=8192).to_dict()
    data["version"] = CHECKPOINT_VERSION + 1
    with pytest.raises(ValueError, match="version"):
        SenderCheckpoint.from_dict(data)
    rdata = ReceiverCheckpoint(protocol="fmtcp", frontier=0, delivered_bytes=0).to_dict()
    del rdata["version"]
    with pytest.raises(ValueError, match="version"):
        ReceiverCheckpoint.from_dict(rdata)


def test_checkpoint_validation():
    with pytest.raises(ValueError):
        SenderCheckpoint(protocol="sctp", frontier=0, byte_offset=0)
    with pytest.raises(ValueError):
        SenderCheckpoint(protocol="fmtcp", frontier=-1, byte_offset=0)
    with pytest.raises(ValueError):
        ReceiverCheckpoint(protocol="fmtcp", frontier=0, delivered_bytes=-5)


def test_resume_state_rejects_inconsistent_pairs():
    sender = SenderCheckpoint(protocol="fmtcp", frontier=5, byte_offset=5 * 8192)
    other = ReceiverCheckpoint(protocol="mptcp", frontier=5, delivered_bytes=0)
    with pytest.raises(ValueError, match="protocol mismatch"):
        resume_state(sender, other)
    behind = ReceiverCheckpoint(protocol="fmtcp", frontier=3, delivered_bytes=0)
    with pytest.raises(ValueError, match="behind"):
        resume_state(sender, behind)


def test_resume_state_carries_both_frontiers():
    sender = SenderCheckpoint(
        protocol="fmtcp", frontier=4, byte_offset=4 * 8192, margin=6.5
    )
    receiver = ReceiverCheckpoint(protocol="fmtcp", frontier=7, delivered_bytes=7 * 8192)
    resume = resume_state(sender, receiver)
    assert resume.sender_frontier == 4  # never skips ahead of its own knowledge
    assert resume.receiver_frontier == 7  # the durable delivery commit
    assert resume.sender_margin == 6.5


@given(frontier=st.integers(0, 10_000), chunks=st.integers(0, 64))
@settings(max_examples=25, deadline=None)
def test_sender_checkpoint_dict_round_trip_property(frontier, chunks):
    ckpt = SenderCheckpoint(
        protocol="mptcp",
        frontier=frontier,
        byte_offset=frontier * 1400,
        chunk_map=tuple((frontier + i, 1400) for i in range(chunks)),
    )
    assert SenderCheckpoint.from_dict(ckpt.to_dict()) == ckpt


# ----------------------------------------------------------------------
# Live snapshots.
# ----------------------------------------------------------------------
def _tiny_fmtcp():
    configs = [PathConfig(bandwidth_bps=4e6, delay_s=0.02) for __ in range(2)]
    network, paths = build_two_path_network(configs, rng=RngStreams(3))
    connection = FmtcpConnection(
        network.sim, paths, BulkSource(200_000), rng=RngStreams(3)
    )
    return network.sim, connection


def test_snapshot_fresh_connection_is_zero():
    sim, connection = _tiny_fmtcp()
    sender = snapshot_sender(connection)
    receiver = snapshot_receiver(connection)
    assert (sender.protocol, sender.frontier, sender.byte_offset) == ("fmtcp", 0, 0)
    assert sender.chunk_map == ()  # FMTCP's checkpoint is O(1): no chunk map
    assert (receiver.frontier, receiver.delivered_bytes) == (0, 0)
    connection.close()


def test_snapshot_mid_transfer_tracks_frontier():
    sim, connection = _tiny_fmtcp()
    connection.start()
    sim.run(until=2.0)
    sender = snapshot_sender(connection)
    receiver = snapshot_receiver(connection)
    assert sender.frontier > 0
    assert sender.byte_offset == sender.frontier * connection.config.block_bytes
    assert receiver.frontier >= sender.frontier
    assert resume_state(sender, receiver).receiver_bytes == receiver.delivered_bytes
    connection.close()


# ----------------------------------------------------------------------
# ReplayableSource.
# ----------------------------------------------------------------------
def test_replayable_source_replays_bytes_identically():
    inner = RandomPayloadSource(5000, rng=RngStreams(1).get("p"))
    source = ReplayableSource(inner)
    first = [source.pull(1000) for __ in range(3)]
    source.rewind(1000)
    assert source.pull(1000) == first[1]
    assert source.pull(1000) == first[2]
    assert source.replayed_bytes == 2000 and source.rewinds == 1
    rest = []
    while not source.exhausted:
        rest.append(source.pull(1000))
    assert b"".join(first + rest) == bytes(inner.transcript)


def test_replayable_source_int_mode_replays_counts():
    source = ReplayableSource(BulkSource(4000))
    assert [source.pull(1000) for __ in range(4)] == [1000] * 4
    source.rewind(2000)
    assert source.pull(1500) == 1500  # replay clamped to the recorded region
    assert source.pull(1500) == 500
    assert source.exhausted


def test_replayable_source_rejects_mode_switch_and_bad_rewind():
    source = ReplayableSource(RandomPayloadSource(100, rng=RngStreams(2).get("p")))
    source.pull(50)
    with pytest.raises(ValueError):
        source.rewind(51)  # beyond what was ever granted
    with pytest.raises(ValueError):
        source.rewind(-1)

    class FlipFlop:
        def __init__(self):
            self.calls = 0

        def pull(self, max_bytes):
            self.calls += 1
            return b"x" * max_bytes if self.calls == 1 else max_bytes

    flip = ReplayableSource(FlipFlop())
    flip.pull(10)
    with pytest.raises(TypeError):
        flip.pull(10)


# ----------------------------------------------------------------------
# Crash fault kinds.
# ----------------------------------------------------------------------
def test_crash_event_validation():
    FaultEvent(1.0, "crash_sender", 0)
    FaultEvent(2.0, "restart", 0, "receiver")
    with pytest.raises(ValueError):
        FaultEvent(1.0, "crash_receiver", 0, 0.5)  # crash takes no value
    with pytest.raises(ValueError):
        FaultEvent(1.0, "restart", 0, "router")


def test_endpoint_scenario_requires_endpoints_handler():
    scenario = FaultScenario("x", [FaultEvent(1.0, "crash_sender", 0)])
    assert scenario.has_endpoint_faults
    configs = [PathConfig(bandwidth_bps=4e6, delay_s=0.02) for __ in range(2)]
    network, paths = build_two_path_network(configs, rng=RngStreams(1))
    with pytest.raises(ValueError, match="endpoints handler"):
        scenario.apply(network.sim, paths)


# ----------------------------------------------------------------------
# Reconnection state machine.
# ----------------------------------------------------------------------
class _StubWatchdog:
    def __init__(self):
        self.failed = False
        self.fail_reason = None
        self.connection = None
        self.starts = 0
        self.stops = 0

    def start(self):
        self.starts += 1

    def stop(self):
        self.stops += 1

    def fail(self, reason):
        self.failed = True
        self.fail_reason = reason


def _manager(policy, watchdog=None, rebuild=None, seed=3):
    sim, connection = _tiny_fmtcp()
    manager = RecoveryManager(
        sim,
        connection,
        rebuild or (lambda epoch, resume: connection),
        RngStreams(seed),
        policy=policy,
        watchdog=watchdog,
    )
    return sim, connection, manager


def test_token_mismatch_exhausts_budget_and_fails_watchdog():
    policy = ReconnectPolicy(retry_budget=3, initial_backoff_s=0.1, max_backoff_s=0.4)
    watchdog = _StubWatchdog()
    sim, connection, manager = _manager(policy, watchdog)
    manager._peer_token = "0000000000000000"  # model a peer that rejects us
    connection.start()
    sim.run(until=1.0)
    manager.crash_sender()
    assert watchdog.stops == 1  # ladder paused for the outage
    manager.restart("sender")
    sim.run(until=30.0)
    assert manager.state == "failed"
    assert manager.attempts_total == 3
    assert watchdog.failed and "budget exhausted" in watchdog.fail_reason
    assert watchdog.starts == 0  # never resumed
    assert manager.outages and "gave_up_at" in manager.outages[-1]
    manager.close()


def test_backoff_schedule_is_deterministic_per_seed():
    def giveup_time(seed):
        policy = ReconnectPolicy(retry_budget=4)
        sim, connection, manager = _manager(policy, seed=seed)
        manager._peer_token = "0000000000000000"
        connection.start()
        sim.run(until=1.0)
        manager.crash_sender()
        manager.restart("sender")
        sim.run(until=60.0)
        assert manager.state == "failed"
        manager.close()
        return manager.outages[-1]["gave_up_at"]

    assert giveup_time(7) == giveup_time(7)  # jitter replays per seed
    assert giveup_time(7) != giveup_time(8)  # but is jitter, not a constant


def test_successful_resume_increments_epoch_and_rearms_watchdog():
    watchdog = _StubWatchdog()
    built = []

    def rebuild(epoch, resume):
        built.append((epoch, resume))
        __, connection = _tiny_fmtcp()
        return connection

    sim, connection, manager = _manager(ReconnectPolicy(), watchdog, rebuild)
    connection.start()
    sim.run(until=2.0)
    frontier_at_crash = connection.sender._decoded_frontier_seen
    manager.crash_sender()
    assert manager.state == "down" and not manager.sender_up
    manager.restart("sender")
    sim.run(until=4.0)
    assert manager.state == "running"
    assert (manager.epoch, manager.resumes) == (1, 1)
    (epoch, resume), = built
    assert epoch == 1
    assert resume.sender_frontier <= frontier_at_crash  # periodic ckpt may lag
    assert resume.receiver_frontier >= resume.sender_frontier
    assert watchdog.connection is manager.connection
    assert watchdog.starts == 1  # ladder re-armed against the new epoch
    assert manager.outages[-1]["outage_s"] > 0
    manager.close()
    manager.connection.close()


def test_crash_is_noop_outside_running_state():
    sim, connection, manager = _manager(ReconnectPolicy())
    manager.crash_sender()
    assert manager.crashes == 1
    manager.crash_receiver()  # already down: no second outage
    manager.crash_sender()
    assert manager.crashes == 1
    manager.close()


def test_policy_validation():
    with pytest.raises(ValueError):
        ReconnectPolicy(retry_budget=0)
    with pytest.raises(ValueError):
        ReconnectPolicy(initial_backoff_s=2.0, max_backoff_s=1.0)
    with pytest.raises(ValueError):
        ReconnectPolicy(jitter_fraction=1.5)


# ----------------------------------------------------------------------
# Snapshot -> restore -> continuation == uninterrupted run.
# ----------------------------------------------------------------------
@given(
    protocol=st.sampled_from(["fmtcp", "mptcp"]),
    seed=st.integers(1, 50),
    crash_t=st.floats(1.0, 4.0),
    gap_s=st.floats(0.2, 1.5),
)
@settings(max_examples=10, deadline=None)
def test_checkpoint_restore_matches_uninterrupted_run(protocol, seed, crash_t, gap_s):
    """Interrupting a transfer with a checkpoint/teardown/rebuild cycle
    must deliver the byte-identical stream of the run that was never
    interrupted — the restore path adds nothing and loses nothing."""
    interrupted = FaultScenario(
        "roundtrip",
        [
            FaultEvent(crash_t, "crash_sender", 0),
            FaultEvent(crash_t + gap_s, "restart", 0, "sender"),
        ],
    )
    clean = FaultScenario("roundtrip_clean", [])
    kwargs = dict(seed=seed, total_bytes=150_000, duration_s=30.0)
    crashed_report = run_recovery(protocol, interrupted, **kwargs)
    clean_report = run_recovery(protocol, clean, **kwargs)
    assert crashed_report.ok, crashed_report.violations
    assert clean_report.ok, clean_report.violations
    assert crashed_report.completed and clean_report.completed
    assert crashed_report.payload_crc32 == clean_report.payload_crc32
    assert crashed_report.delivered_bytes == clean_report.delivered_bytes
    assert crashed_report.delivered_units == clean_report.delivered_units
