"""Recovery soak: both protocols through every crash preset, many seeds.

Every run must satisfy the invariants checked by
:func:`repro.recovery.run_recovery`:

1. byte-identical final delivery despite K crashes (the delivered stream
   is a prefix of — and on completion equal to — the source transcript);
2. exactly-once, in-order delivery (stale-checkpoint re-sends deduped);
3. bounded recovery time per outage, detection within the policy ceiling;
4. scenarios whose crashes all restart complete; the never-restarted one
   fails cleanly through the watchdog and must *not* quietly succeed;
5. epoch/attempt accounting (one resume per epoch, crashes resolved);
6. no wedged timers on the live epoch, event queue drains.

Seeded and fully deterministic: a failure reproduces exactly from the
seed named in the assertion message, and same-seed runs are asserted to
produce identical fingerprints across restart epochs. Set
``REPRO_FLIGHT_DIR`` for flight-recorder dumps of failing runs (CI
uploads them as artifacts); ``REPRO_FAST=1`` runs a single seed per
preset.
"""

import os

import pytest

from repro.faults import RECOVERY_SCENARIOS, FaultScenario
from repro.recovery import run_recovery

SOAK_SEEDS = (1,) if os.environ.get("REPRO_FAST") else tuple(range(1, 31))
FLIGHT_DIR = os.environ.get("REPRO_FLIGHT_DIR") or None


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
@pytest.mark.parametrize("name", sorted(RECOVERY_SCENARIOS))
def test_recovery_soak_presets(protocol, name):
    """30 seeds per preset per protocol, zero violations."""
    failures = []
    for seed in SOAK_SEEDS:
        report = run_recovery(
            protocol,
            RECOVERY_SCENARIOS[name](),
            seed=seed,
            flight_dump_dir=FLIGHT_DIR,
        )
        if not report.ok:
            detail = f"seed {seed}: {report.violations}"
            if report.flight_dump_path:
                detail += f" [flight dump: {report.flight_dump_path}]"
            failures.append(detail)
    assert not failures, (
        f"{name}/{protocol} recovery violations:\n" + "\n".join(failures)
    )


def test_recovery_report_shape():
    report = run_recovery("fmtcp", RECOVERY_SCENARIOS["receiver_crash"]())
    assert report.protocol == "fmtcp"
    assert report.scenario_name == "receiver_crash"
    assert report.completed and report.completion_time_s is not None
    assert report.expect_complete
    assert report.crashes == 1 and report.resumes == 1 and report.epochs == 1
    assert report.attempts >= report.resumes
    assert report.recovery_state == "running"
    assert report.checkpoint_bytes > 0
    assert len(report.outages) == 1
    outage = report.outages[0]
    assert outage["kind"] == "crash_receiver"
    assert 0 < outage["detect_s"] <= 3.0
    assert outage["resume_at"] > outage["restart_at"]
    assert report.max_outage_s == pytest.approx(outage["outage_s"])
    assert report.ok and not report.violations


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
def test_reconnect_exhaustion_fails_cleanly(protocol):
    """A receiver that never restarts ends in a clean watchdog failure
    carrying the manager's reason — not a hang, not a quiet success."""
    report = run_recovery(protocol, RECOVERY_SCENARIOS["reconnect_exhaustion"]())
    assert report.ok, report.violations
    assert not report.completed and not report.expect_complete
    assert report.recovery_state == "failed"
    assert report.resumes == 0
    assert report.watchdog_failed
    assert "budget exhausted" in report.fail_reason
    diagnosis = report.diagnosis
    assert diagnosis is not None
    assert diagnosis["fail_reason"] == report.fail_reason


@pytest.mark.parametrize("name", ["crash_storm", "reconnect_exhaustion"])
def test_recovery_is_deterministic_across_restart_epochs(name):
    """Same seed -> identical payload CRC, timings and attempt counts,
    even through multiple crash/restart epochs (per-epoch RNG streams)."""
    first = run_recovery("fmtcp", RECOVERY_SCENARIOS[name](), seed=11)
    second = run_recovery("fmtcp", RECOVERY_SCENARIOS[name](), seed=11)
    assert first.ok and second.ok
    assert first.fingerprint() == second.fingerprint()
    assert first.outages == second.outages


def test_crash_storm_survives_repeated_crashes():
    report = run_recovery("fmtcp", RECOVERY_SCENARIOS["crash_storm"]())
    assert report.ok, report.violations
    assert report.completed
    assert report.crashes == 3 and report.resumes == 3 and report.epochs == 3


def test_recovery_post_mortem_dump(tmp_path):
    """A violating run with a flight dir leaves a post-mortem JSONL."""
    from repro.sim.tracefile import read_trace_file

    # Force a violation: a bound no real recovery can meet.
    report = run_recovery(
        "mptcp",
        RECOVERY_SCENARIOS["receiver_crash"](),
        flight_dump_dir=str(tmp_path),
        recovery_bound_s=0.001,
    )
    assert not report.ok
    assert report.flight_dump_path is not None
    records = read_trace_file(report.flight_dump_path)
    assert records[0]["kind"] == "flight.meta"
    assert records[0]["violations"]


def test_rejects_unknown_protocol_and_non_crash_scenarios():
    with pytest.raises(ValueError):
        run_recovery("sctp", RECOVERY_SCENARIOS["receiver_crash"]())
    with pytest.raises(ValueError, match="endpoint"):
        run_recovery("fmtcp", FaultScenario.named("link_flap"))
