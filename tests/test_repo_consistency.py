"""Repository self-consistency: docs reference real things.

Keeps README/DESIGN/EXPERIMENTS honest as the codebase evolves — every
example, benchmark and CLI command mentioned must actually exist.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO / name).read_text()


def test_readme_examples_exist():
    readme = read("README.md")
    for match in re.findall(r"`examples/([a-z_]+\.py)`", readme):
        assert (REPO / "examples" / match).is_file(), match


def test_all_example_files_are_listed_in_readme():
    readme = read("README.md")
    for path in (REPO / "examples").glob("*.py"):
        assert f"examples/{path.name}" in readme, path.name


def test_design_benchmark_references_exist():
    design = read("DESIGN.md")
    for match in re.findall(r"`benchmarks/(bench_[a-z0-9_]+\.py)`", design):
        assert (REPO / "benchmarks" / match).is_file(), match


def test_experiments_bench_references_exist():
    experiments = read("EXPERIMENTS.md")
    for match in re.findall(r"`(bench_[a-z0-9_]+\.py)`", experiments):
        assert (REPO / "benchmarks" / match).is_file(), match


def test_readme_cli_commands_are_registered():
    from repro.cli import build_parser

    parser = build_parser()
    readme = read("README.md")
    for match in re.findall(r"python -m repro ([a-z0-9]+)", readme):
        if match in ("repro",):
            continue
        # parse_args must accept the command (SystemExit means unknown).
        args = [match] if match != "fig4" else [match]
        parser.parse_args(args)


def test_docs_directory_files_referenced():
    readme = read("README.md")
    for path in (REPO / "docs").glob("*.md"):
        assert f"docs/{path.name}" in readme or path.name == "paper-mapping.md" or (
            f"docs/{path.name}" in read("DESIGN.md")
        ), path.name


def test_paper_mapping_test_files_exist():
    mapping = read("docs/paper-mapping.md")
    for match in re.findall(r"`(test_[a-z0-9_]+\.py)`", mapping):
        assert (REPO / "tests" / match).is_file(), match


def test_version_consistent():
    import repro

    pyproject = read("pyproject.toml")
    assert f'version = "{repro.__version__}"' in pyproject


def test_public_api_importable():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_bundled_trace_assets_in_package_data():
    """Every bundled trace asset must exist on disk AND be covered by the
    package-data globs, or sdists/wheels would ship without them and
    ``load_bundled_trace`` would fail post-install."""
    from repro.traces import BUNDLED_TRACES

    data_dir = REPO / "src" / "repro" / "traces" / "data"
    for name in BUNDLED_TRACES:
        assert (data_dir / f"{name}.csv").is_file(), name
    pyproject = read("pyproject.toml")
    assert "traces/data/*.csv" in pyproject
