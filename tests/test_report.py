"""Tests for the RESULTS.md report assembler."""

from pathlib import Path

import pytest

from repro.experiments.report import (
    SECTION_ORDER,
    build_report,
    collect_results,
    write_report,
)


def test_collect_results_reads_txt_files(tmp_path):
    (tmp_path / "fig3_goodput.txt").write_text("rows\n")
    (tmp_path / "custom_thing.txt").write_text("data\n")
    (tmp_path / "ignored.json").write_text("{}")
    results = collect_results(tmp_path)
    assert set(results) == {"fig3_goodput", "custom_thing"}
    assert results["fig3_goodput"] == "rows"


def test_collect_results_missing_dir():
    assert collect_results(Path("/nonexistent/dir")) == {}


def test_build_report_orders_known_sections_first():
    results = {
        "zzz_custom": "custom data",
        "fig6_jitter": "jitter rows",
        "table1_path_fidelity": "fidelity rows",
    }
    report = build_report(results)
    table1 = report.index("Table I")
    fig6 = report.index("Figure 6")
    custom = report.index("zzz_custom")
    assert table1 < fig6 < custom
    assert "Other results" in report
    assert "```" in report


def test_build_report_header_injected():
    report = build_report({"fig3_goodput": "x"}, header="run: 2026-07-07")
    assert "run: 2026-07-07" in report


def test_write_report_roundtrip(tmp_path):
    results_dir = tmp_path / "results"
    results_dir.mkdir()
    (results_dir / "fig3_goodput.txt").write_text("the rows\n")
    output = write_report(results_dir=results_dir, output_path=tmp_path / "OUT.md")
    text = output.read_text()
    assert text.startswith("# Reproduction results")
    assert "the rows" in text


def test_write_report_without_results_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        write_report(results_dir=tmp_path / "empty", output_path=tmp_path / "OUT.md")


def test_section_order_has_no_duplicates():
    names = [name for name, __ in SECTION_ORDER]
    assert len(names) == len(set(names))
