"""Direct unit tests for FmtcpSender internals and MPTCP credit waterfall."""

import pytest

from repro.core.blocks import BlockManager
from repro.core.config import FmtcpConfig
from repro.core.packets import FmtcpFeedback
from repro.core.sender import FmtcpSender
from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.sim.engine import Simulator
from repro.sim.trace import TraceBus
from repro.workloads.sources import BulkSource
from tests.conftest import make_two_path


class FakeSubflow:
    """Just enough of the Subflow surface for the sender's estimators."""

    def __init__(self, subflow_id, srtt=0.2, rto=0.4, loss=0.0, window_space=4,
                 tau=0.0, in_flight=0, last_transmit_at=0.0, last_ack_at=None,
                 potentially_failed=False):
        self.subflow_id = subflow_id
        self.potentially_failed = potentially_failed
        self.is_joining = False
        self.srtt = srtt
        self.rto_value = rto
        self.loss_rate_estimate = loss
        self.window_space = window_space
        self.tau = tau
        self.in_flight = in_flight
        self.last_transmit_at = last_transmit_at
        self.last_ack_at = last_ack_at
        self.pumped = 0
        self.last_loss_observed_at = None

    def aged_loss_estimate(self, half_life):
        return self.loss_rate_estimate

    def pump(self):
        self.pumped += 1


def make_sender(config=None, subflows=None, trace=None):
    config = config or FmtcpConfig()
    sim = Simulator()
    manager = BlockManager(config, BulkSource())
    sender = FmtcpSender(sim, config, manager, trace=trace)
    sender.attach_subflows(subflows or [FakeSubflow(0), FakeSubflow(1)])
    return sender, sim


# ----------------------------------------------------------------------
# Loss-rate clamping and floors.
# ----------------------------------------------------------------------
def test_loss_rate_clamped_below_one():
    sender, __ = make_sender(subflows=[FakeSubflow(0, loss=0.999)])
    assert sender.loss_rate_of(0) == pytest.approx(0.95)


def test_loss_rate_floor_applied():
    config = FmtcpConfig(loss_estimate_floor=0.02)
    sender, __ = make_sender(config=config, subflows=[FakeSubflow(0, loss=0.0)])
    assert sender.loss_rate_of(0) == pytest.approx(0.02)


# ----------------------------------------------------------------------
# Probe triggering.
# ----------------------------------------------------------------------
def test_probe_fires_after_idle_interval():
    sender, sim = make_sender()
    subflow = sender.subflows[0]
    subflow.last_transmit_at = 0.0
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert sender._should_probe(subflow)


def test_probe_suppressed_while_in_flight():
    sender, sim = make_sender()
    subflow = sender.subflows[0]
    subflow.in_flight = 1
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert not sender._should_probe(subflow)


def test_probe_chain_fires_right_after_ack_on_distrusted_path():
    sender, sim = make_sender()
    subflow = sender.subflows[0]
    sim.schedule(2.0, lambda: None)
    sim.run()
    subflow.last_transmit_at = sim.now  # just transmitted: interval not met
    subflow.last_ack_at = sim.now  # ...but an ACK just landed
    subflow.loss_rate_estimate = 0.5  # and the path is still distrusted
    assert sender._should_probe(subflow)
    subflow.loss_rate_estimate = 0.05  # trusted path: no chain needed
    assert not sender._should_probe(subflow)


def test_probe_disabled_by_config():
    config = FmtcpConfig(probe_interval_s=None)
    sender, sim = make_sender(config=config)
    subflow = sender.subflows[0]
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert not sender._should_probe(subflow)


def test_probe_payload_uses_last_pending_block():
    sender, sim = make_sender()
    subflow = sender.subflows[0]
    sim.schedule(2.0, lambda: None)
    sim.run()
    payload, size = sender.next_payload(subflow)
    assert sender.probes_sent == 1
    last_block = sender.blocks.pending_blocks[-1]
    # record_sent happened against the probed block.
    probed_ids = [group.block_id for group in payload.groups]
    assert probed_ids == [last_block.block_id]


# ----------------------------------------------------------------------
# Feedback processing.
# ----------------------------------------------------------------------
def test_feedback_confirms_frontier_and_out_of_order():
    trace = TraceBus()
    done = []
    trace.subscribe("conn.block_done", done.append)
    sender, sim = make_sender(trace=trace)
    sender.blocks.replenish()
    for block in sender.blocks.pending_blocks[:4]:
        block.record_sent(0, 1, now=0.0)  # ensure first_tx_at is set
    feedback = FmtcpFeedback(
        k_bar={}, decoded_in_order=2, decoded_out_of_order=(3,)
    )
    sender.on_ack_feedback(sender.subflows[0], feedback)
    confirmed = sorted(record["block_id"] for record in done)
    assert confirmed == [0, 1, 3]
    # Every subflow got a pump after feedback.
    assert all(subflow.pumped >= 1 for subflow in sender.subflows)


def test_feedback_is_idempotent():
    sender, sim = make_sender()
    sender.blocks.replenish()
    for block in sender.blocks.pending_blocks[:2]:
        block.record_sent(0, 1, now=0.0)
    feedback = FmtcpFeedback(k_bar={}, decoded_in_order=2, decoded_out_of_order=())
    sender.on_ack_feedback(sender.subflows[0], feedback)
    completed = sender.blocks.blocks_completed
    sender.on_ack_feedback(sender.subflows[0], feedback)
    assert sender.blocks.blocks_completed == completed


def test_k_bar_update_reaches_blocks():
    sender, __ = make_sender()
    sender.blocks.replenish()
    sender.on_ack_feedback(
        sender.subflows[0],
        FmtcpFeedback(k_bar={0: 17}, decoded_in_order=0, decoded_out_of_order=()),
    )
    assert sender.blocks.block_by_id(0).k_bar == 17


# ----------------------------------------------------------------------
# MPTCP waterfall credit arbitration (via a real connection).
# ----------------------------------------------------------------------
def test_waterfall_reserves_credit_for_preferred_subflow():
    network, paths, trace = make_two_path(delay1=0.01, delay2=0.20)
    connection = MptcpConnection(
        network.sim,
        paths,
        BulkSource(),
        config=MptcpConfig(recv_buffer_chunks=8),
        trace=trace,
    )
    connection.start()
    network.sim.run(until=5.0)
    fast, slow = connection.subflows
    # Under an 8-chunk credit, the fast (low-RTT) subflow should carry the
    # overwhelming majority of traffic.
    assert fast.packets_sent > 5 * slow.packets_sent


def test_waterfall_lets_slow_subflow_use_leftover_credit():
    network, paths, trace = make_two_path(delay1=0.01, delay2=0.20)
    connection = MptcpConnection(
        network.sim,
        paths,
        BulkSource(),
        config=MptcpConfig(recv_buffer_chunks=256),
        trace=trace,
    )
    connection.start()
    network.sim.run(until=5.0)
    __, slow = connection.subflows
    # Ample credit: even the slow subflow fills its own window.
    assert slow.packets_sent > 50
