"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_events_run_in_time_order(sim):
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order(sim):
    order = []
    for name in "abcde":
        sim.schedule(1.0, order.append, name)
    sim.run()
    assert order == list("abcde")


def test_clock_advances_to_event_time(sim):
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events(sim):
    ran = []
    sim.schedule(1.0, ran.append, 1)
    sim.schedule(5.0, ran.append, 5)
    sim.run(until=2.0)
    assert ran == [1]
    assert sim.now == 2.0  # clock advanced to the horizon
    sim.run()
    assert ran == [1, 5]


def test_run_until_exact_boundary_inclusive(sim):
    ran = []
    sim.schedule(2.0, ran.append, 2)
    sim.run(until=2.0)
    assert ran == [2]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_run(sim):
    ran = []
    event = sim.schedule(1.0, ran.append, "x")
    event.cancel()
    sim.run()
    assert ran == []


def test_cancel_one_of_many(sim):
    ran = []
    sim.schedule(1.0, ran.append, "keep")
    victim = sim.schedule(1.0, ran.append, "drop")
    victim.cancel()
    sim.run()
    assert ran == ["keep"]


def test_events_scheduled_during_run_execute(sim):
    ran = []

    def chain(depth):
        ran.append(depth)
        if depth < 3:
            sim.schedule(1.0, chain, depth + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert ran == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_stop_halts_processing(sim):
    ran = []
    sim.schedule(1.0, lambda: (ran.append(1), sim.stop()))
    sim.schedule(2.0, ran.append, 2)
    sim.run()
    assert ran == [1]
    sim.run()
    assert ran == [1, 2]


def test_max_events_limits_execution(sim):
    ran = []
    for index in range(10):
        sim.schedule(float(index), ran.append, index)
    sim.run(max_events=4)
    assert ran == [0, 1, 2, 3]


def test_events_processed_counter(sim):
    for index in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_reentrant_run_rejected(sim):
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_drain_cancelled_compacts_heap(sim):
    events = [sim.schedule(10.0, lambda: None) for __ in range(20)]
    for event in events[:15]:
        event.cancel()
    assert sim.pending_events == 20
    removed = sim.drain_cancelled()
    assert removed == 15
    assert sim.pending_events == 5
    sim.run()
    assert sim.events_processed == 5


def test_drain_cancelled_on_empty_heap_is_a_noop(sim):
    assert sim.drain_cancelled() == 0
    assert sim.pending_events == 0


def test_drain_cancelled_preserves_execution_order(sim):
    """Compaction re-heapifies; surviving events must still fire in
    (time, insertion-seq) order."""
    seen = []
    keep = []
    for index in range(10):
        event = sim.schedule(1.0, seen.append, index)  # all at the same time
        if index % 2:
            keep.append(index)
        else:
            event.cancel()
    sim.schedule(0.5, seen.append, "early")
    sim.drain_cancelled()
    sim.run()
    assert seen == ["early"] + keep


def test_drain_cancelled_mid_run_from_a_callback(sim):
    """Transports call drain_cancelled() while the simulation is running;
    it must not disturb pending live events."""
    fired = []
    timers = [sim.schedule(5.0, fired.append, f"t{i}") for i in range(4)]

    def restart_timers():
        for timer in timers[:3]:
            timer.cancel()
        assert sim.drain_cancelled() == 3
        sim.schedule(1.0, fired.append, "restarted")

    sim.schedule(2.0, restart_timers)
    sim.run()
    assert fired == ["restarted", "t3"]


def test_zero_delay_runs_at_current_time(sim):
    seen = []
    sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [1.0]


def test_run_to_exhaustion_leaves_clock_at_last_event(sim):
    sim.schedule(4.2, lambda: None)
    sim.run()
    assert sim.now == 4.2


def test_event_repr_mentions_time(sim):
    event = sim.schedule(1.5, lambda: None)
    assert "1.5" in repr(event)
