"""The sim-engine profiler: attribution, lifecycle, and determinism."""

from repro.sim.engine import Simulator
from repro.telemetry import SimProfiler, callback_label


def _busy(sim, depth=0):
    if depth < 3:
        sim.schedule(0.1, _busy, sim, depth + 1)


class _Component:
    def __init__(self, sim):
        self.sim = sim
        self.ticks = 0

    def tick(self):
        self.ticks += 1
        if self.ticks < 5:
            self.sim.schedule(0.05, self.tick)


def test_profiler_counts_and_attributes_events():
    sim = Simulator()
    profiler = sim.enable_profiling()
    component = _Component(sim)
    sim.schedule(0.0, _busy, sim)
    sim.schedule(0.0, component.tick)
    sim.run(until=2.0)
    report = profiler.report()
    assert report["events"] == 9  # 4 _busy + 5 ticks
    assert report["runs"] == 1
    assert report["wall_s"] > 0
    assert report["events_per_s"] > 0
    labels = {entry["kind"]: entry["count"] for entry in report["by_kind"]}
    assert labels[callback_label(_busy)] == 4
    assert labels[callback_label(component.tick)] == 5
    assert all(entry["mean_us"] >= 0 for entry in report["by_kind"])


def test_profiler_sim_wall_ratio_and_heap_depth():
    sim = Simulator()
    profiler = sim.enable_profiling()
    for index in range(20):
        sim.schedule(0.1 * index, lambda: None)
    sim.run(until=5.0)
    assert profiler.max_heap_depth >= 19
    assert profiler.sim_time_span > 0
    # Twenty empty callbacks over 1.9 simulated seconds run far faster
    # than real time.
    assert profiler.sim_wall_ratio > 1.0


def test_detached_profiler_stops_accumulating():
    sim = Simulator()
    profiler = sim.enable_profiling()
    sim.schedule(0.0, lambda: None)
    sim.run(until=1.0)
    count = profiler.events
    sim.set_profiler(None)
    assert sim.profiler is None
    sim.schedule(1.5, lambda: None)
    sim.run(until=2.0)
    assert profiler.events == count


def test_profiler_does_not_change_simulation_outcome():
    def run(profiled):
        sim = Simulator()
        if profiled:
            sim.enable_profiling()
        order = []
        sim.schedule(0.2, order.append, "b")
        sim.schedule(0.1, order.append, "a")
        sim.schedule(0.2, order.append, "c")
        sim.run(until=1.0)
        return order, sim.now

    assert run(False) == run(True)


def test_profiler_accumulates_across_runs():
    sim = Simulator()
    profiler = SimProfiler()
    sim.set_profiler(profiler)
    sim.schedule(0.1, lambda: None)
    sim.run(until=0.5)
    sim.schedule(0.1, lambda: None)
    sim.run(until=1.0)
    assert profiler.runs == 2
    assert profiler.events == 2


def test_render_is_printable():
    sim = Simulator()
    profiler = sim.enable_profiling()
    sim.schedule(0.0, lambda: None)
    sim.run(until=1.0)
    lines = profiler.render()
    assert any("events" in line for line in lines)


def test_callback_label_shapes():
    sim = Simulator()
    component = _Component(sim)
    assert callback_label(component.tick).endswith("_Component.tick")
    assert "test_sim_profiler" in callback_label(_busy)
