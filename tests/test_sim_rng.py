"""Unit tests for named RNG streams."""

from repro.sim.rng import RngStreams


def test_same_seed_same_stream_is_reproducible():
    a = RngStreams(42).get("loss:path0")
    b = RngStreams(42).get("loss:path0")
    assert [a.random() for __ in range(10)] == [b.random() for __ in range(10)]


def test_different_names_give_different_sequences():
    streams = RngStreams(42)
    a = [streams.get("a").random() for __ in range(5)]
    b = [streams.get("b").random() for __ in range(5)]
    assert a != b


def test_different_master_seeds_differ():
    a = RngStreams(1).get("x").random()
    b = RngStreams(2).get("x").random()
    assert a != b


def test_stream_is_cached_not_recreated():
    streams = RngStreams(7)
    first = streams.get("s")
    first.random()
    again = streams.get("s")
    assert first is again


def test_creation_order_does_not_matter():
    forward = RngStreams(9)
    forward.get("one")
    one_then = forward.get("two").random()
    backward = RngStreams(9)
    backward.get("two")
    assert backward.get("two") is not None
    backward_two = RngStreams(9).get("two").random()
    assert one_then == backward_two


def test_fork_derives_independent_registry():
    parent = RngStreams(5)
    child_a = parent.fork("rep0")
    child_b = parent.fork("rep1")
    assert child_a.master_seed != child_b.master_seed
    assert child_a.get("x").random() != child_b.get("x").random()


def test_fork_is_reproducible():
    a = RngStreams(5).fork("rep0").get("x").random()
    b = RngStreams(5).fork("rep0").get("x").random()
    assert a == b
