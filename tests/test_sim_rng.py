"""Unit tests for named RNG streams."""

from repro.sim.rng import RngStreams


def test_same_seed_same_stream_is_reproducible():
    a = RngStreams(42).get("loss:path0")
    b = RngStreams(42).get("loss:path0")
    assert [a.random() for __ in range(10)] == [b.random() for __ in range(10)]


def test_different_names_give_different_sequences():
    streams = RngStreams(42)
    a = [streams.get("a").random() for __ in range(5)]
    b = [streams.get("b").random() for __ in range(5)]
    assert a != b


def test_different_master_seeds_differ():
    a = RngStreams(1).get("x").random()
    b = RngStreams(2).get("x").random()
    assert a != b


def test_stream_is_cached_not_recreated():
    streams = RngStreams(7)
    first = streams.get("s")
    first.random()
    again = streams.get("s")
    assert first is again


def test_creation_order_does_not_matter():
    forward = RngStreams(9)
    forward.get("one")
    one_then = forward.get("two").random()
    backward = RngStreams(9)
    backward.get("two")
    assert backward.get("two") is not None
    backward_two = RngStreams(9).get("two").random()
    assert one_then == backward_two


def test_fork_derives_independent_registry():
    parent = RngStreams(5)
    child_a = parent.fork("rep0")
    child_b = parent.fork("rep1")
    assert child_a.master_seed != child_b.master_seed
    assert child_a.get("x").random() != child_b.get("x").random()


def test_fork_is_reproducible():
    a = RngStreams(5).fork("rep0").get("x").random()
    b = RngStreams(5).fork("rep0").get("x").random()
    assert a == b


def test_epoch_zero_matches_bare_streams():
    """Epoch 0 must derive the exact pre-epoch seed layout: old seeds
    keep producing byte-identical streams."""
    bare = RngStreams(42).get("loss:path0").random()
    epoch0 = RngStreams(42, epoch=0).get("loss:path0").random()
    via_view = RngStreams(42).for_epoch(0).get("loss:path0").random()
    assert bare == epoch0 == via_view


def test_epochs_give_disjoint_reproducible_streams():
    draws = {
        epoch: RngStreams(42, epoch=epoch).get("x").random() for epoch in range(4)
    }
    assert len(set(draws.values())) == 4  # no replay across restart epochs
    for epoch, value in draws.items():
        assert RngStreams(42).for_epoch(epoch).get("x").random() == value


def test_for_epoch_same_epoch_returns_self():
    streams = RngStreams(7, epoch=2)
    assert streams.for_epoch(2) is streams
    other = streams.for_epoch(3)
    assert other is not streams and other.master_seed == streams.master_seed


def test_epoch_validation():
    import pytest

    with pytest.raises(ValueError):
        RngStreams(1, epoch=-1)
