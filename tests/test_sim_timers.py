"""Unit tests for restartable timers."""

from repro.sim.timers import Timer


def test_timer_fires_after_delay(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.run()
    assert fired == [2.0]


def test_timer_stop_prevents_firing(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(True))
    timer.start(1.0)
    timer.stop()
    sim.run()
    assert fired == []


def test_restart_supersedes_previous_schedule(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    timer.restart(5.0)
    sim.run()
    assert fired == [5.0]


def test_timer_is_one_shot(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    sim.run()
    assert fired == [1.0]
    assert not timer.armed


def test_armed_and_expiry_reflect_state(sim):
    timer = Timer(sim, lambda: None)
    assert not timer.armed
    assert timer.expiry is None
    timer.start(3.0)
    assert timer.armed
    assert timer.expiry == 3.0
    timer.stop()
    assert not timer.armed


def test_timer_can_rearm_inside_callback(sim):
    fired = []

    def on_fire():
        fired.append(sim.now)
        if len(fired) < 3:
            timer.start(1.0)

    timer = Timer(sim, on_fire)
    timer.start(1.0)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_stop_is_idempotent(sim):
    timer = Timer(sim, lambda: None)
    timer.stop()
    timer.start(1.0)
    timer.stop()
    timer.stop()
    sim.run()
    assert not timer.armed
