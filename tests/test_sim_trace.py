"""Unit tests for the trace bus."""

import pytest

from repro.sim.trace import TraceBus, TraceRecord


def test_subscriber_receives_matching_kind(trace):
    seen = []
    trace.subscribe("packet", seen.append)
    trace.emit(1.0, "packet", size=100)
    assert len(seen) == 1
    assert seen[0].time == 1.0
    assert seen[0]["size"] == 100


def test_subscriber_ignores_other_kinds(trace):
    seen = []
    trace.subscribe("packet", seen.append)
    trace.emit(1.0, "other", x=1)
    assert seen == []


def test_wildcard_receives_everything(trace):
    seen = []
    trace.subscribe("*", seen.append)
    trace.emit(1.0, "a")
    trace.emit(2.0, "b")
    assert [record.kind for record in seen] == ["a", "b"]


def test_multiple_subscribers_all_notified(trace):
    seen_a, seen_b = [], []
    trace.subscribe("k", seen_a.append)
    trace.subscribe("k", seen_b.append)
    trace.emit(0.0, "k")
    assert len(seen_a) == len(seen_b) == 1


def test_unsubscribe_stops_delivery(trace):
    seen = []
    trace.subscribe("k", seen.append)
    trace.unsubscribe("k", seen.append)
    trace.emit(0.0, "k")
    assert seen == []


def test_unsubscribe_wildcard(trace):
    seen = []
    trace.subscribe("*", seen.append)
    trace.unsubscribe("*", seen.append)
    trace.emit(0.0, "k")
    assert seen == []


def test_has_subscribers(trace):
    assert not trace.has_subscribers("k")
    trace.subscribe("k", lambda record: None)
    assert trace.has_subscribers("k")
    assert not trace.has_subscribers("other")
    trace.subscribe("*", lambda record: None)
    assert trace.has_subscribers("other")


def test_record_get_with_default():
    record = TraceRecord(time=0.0, kind="k", fields={"a": 1})
    assert record.get("a") == 1
    assert record.get("missing") is None
    assert record.get("missing", 7) == 7


def test_emit_without_subscribers_is_noop(trace):
    trace.emit(0.0, "nobody", listening=True)  # must not raise


def test_unsubscribe_self_during_emit(trace):
    """A callback may unsubscribe itself mid-emit without skipping or
    crashing the other subscribers (regression: mutation during
    iteration silently skipped the next callback in the list)."""
    seen = []

    def one_shot(record):
        seen.append(("one_shot", record.kind))
        trace.unsubscribe("k", one_shot)

    trace.subscribe("k", one_shot)
    trace.subscribe("k", lambda record: seen.append(("steady", record.kind)))
    trace.emit(0.0, "k")
    assert seen == [("one_shot", "k"), ("steady", "k")]
    seen.clear()
    trace.emit(1.0, "k")
    assert seen == [("steady", "k")]


def test_unsubscribe_wildcard_during_emit(trace):
    seen = []

    def one_shot(record):
        seen.append("one_shot")
        trace.unsubscribe("*", one_shot)

    trace.subscribe("*", one_shot)
    trace.subscribe("*", lambda record: seen.append("steady"))
    trace.emit(0.0, "k")
    trace.emit(1.0, "k")
    assert seen == ["one_shot", "steady", "steady"]


def test_subscribe_during_emit_sees_next_record_only(trace):
    seen = []

    def late(record):
        seen.append(("late", record.time))

    def adder(record):
        trace.subscribe("k", late)

    trace.subscribe("k", adder)
    trace.emit(0.0, "k")
    assert seen == []  # the new subscriber missed the in-flight record
    trace.unsubscribe("k", adder)
    trace.emit(1.0, "k")
    assert seen == [("late", 1.0)]


def test_reentrant_emit_is_deferred_in_causal_order(trace):
    """A subscriber emitting from inside a dispatch sees its record
    delivered after the triggering record finishes, not recursively."""
    seen = []

    def reactor(record):
        if record.kind == "cause":
            trace.emit(record.time, "effect")

    trace.subscribe("cause", reactor)
    trace.subscribe("*", lambda record: seen.append(record.kind))
    trace.emit(0.0, "cause")
    assert seen == ["cause", "effect"]
    assert trace.records_dropped == 0


def test_max_pending_validation():
    with pytest.raises(ValueError):
        TraceBus(max_pending=0)


def test_pending_queue_cap_counts_drops():
    """A pathological feedback loop degrades to counted drops instead of
    unbounded queue growth."""
    trace = TraceBus(max_pending=4)
    dispatched = []

    def burst(record):
        for __ in range(10):
            trace.emit(record.time, "quiet")

    trace.subscribe("burst", burst)
    trace.subscribe("quiet", lambda record: dispatched.append(record))
    trace.emit(1.0, "burst")
    # 10 re-entrant emits against a cap of 4: 6 dropped, 4 delivered.
    assert len(dispatched) == 4
    assert trace.records_dropped == 6


def test_pending_queue_drains_below_cap(trace):
    dispatched = []

    def burst(record):
        for index in range(3):
            trace.emit(record.time, "quiet", index=index)

    trace.subscribe("burst", burst)
    trace.subscribe("quiet", lambda record: dispatched.append(record["index"]))
    trace.emit(0.0, "burst")
    assert dispatched == [0, 1, 2]
    assert trace.records_dropped == 0
