"""Conservation soak: across 30 seeds x {FMTCP, MPTCP}, every delivered
block's stage durations sum exactly to its end-to-end delay (the
acceptance invariant of the span layer), stages are non-negative, and
span collection never leaves a block half-finished."""

import os

import pytest

from repro.experiments.runner import run_transfer
from repro.telemetry import TelemetryConfig
from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs

SEEDS = range(1, 31)
# Case 2 (100ms/5%) keeps both loss recovery and reordering in play.
CASE = next(c for c in TABLE1_CASES if c.case_id == 2)
DURATION_S = 1.5 if os.environ.get("REPRO_FAST") else 2.5


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
def test_conservation_invariant_across_seeds(protocol):
    failures = []
    total_finished = 0
    for seed in SEEDS:
        result = run_transfer(
            protocol,
            table1_path_configs(CASE),
            duration_s=DURATION_S,
            seed=seed,
            telemetry=TelemetryConfig(spans=True),
        )
        report = result.telemetry.spans
        total_finished += report["finished"]
        if report["finished"] == 0:
            failures.append(f"seed {seed}: no finished spans")
        if report["incomplete"] != 0:
            failures.append(
                f"seed {seed}: {report['incomplete']} spans delivered "
                f"with missing edges"
            )
        if report["max_conservation_error_s"] > 1e-9:
            failures.append(
                f"seed {seed}: conservation error "
                f"{report['max_conservation_error_s']:.3e}s"
            )
        if report["min_stage_s"] < -1e-12:
            failures.append(
                f"seed {seed}: negative stage duration "
                f"{report['min_stage_s']:.3e}s (edges out of order)"
            )
    assert not failures, f"{protocol}: " + "; ".join(failures)
    assert total_finished > 0
