"""Causal span layer: stage math, causal rollups, conservation, and the
zero-cost-when-off guarantee."""

import pytest

from repro.telemetry import (
    FMTCP_STAGES,
    MPTCP_STAGES,
    SPAN_KINDS,
    SpanCollector,
    collect_spans,
    critical_path_report,
    spans_report,
)


def _fm_records():
    """One clean FMTCP block, one with a loss episode, one left open."""
    return [
        {"t": 0.0, "kind": "span.block_open", "block_id": 0, "k": 4, "bytes": 128},
        {"t": 0.1, "kind": "span.symbols_tx", "block_id": 0, "subflow": 0, "n": 3,
         "first": True},
        {"t": 0.1, "kind": "span.symbols_tx", "block_id": 0, "subflow": 1, "n": 2,
         "first": False},
        {"t": 0.3, "kind": "span.symbols_rx", "block_id": 0, "subflow": 0, "n": 3},
        {"t": 0.35, "kind": "span.symbols_rx", "block_id": 0, "subflow": 1, "n": 2},
        {"t": 0.35, "kind": "fmtcp.block_decoded", "block_id": 0, "k": 4,
         "received": 5, "overhead": 1, "wait": 0.05},
        {"t": 0.5, "kind": "conn.delivered", "block_id": 0, "bytes": 128},
        # Block 1: a loss at 1.2 repaired by fresh symbols at 1.5.
        {"t": 1.0, "kind": "span.block_open", "block_id": 1, "k": 4, "bytes": 128},
        {"t": 1.1, "kind": "span.symbols_tx", "block_id": 1, "subflow": 0, "n": 4,
         "first": True},
        {"t": 1.15, "kind": "span.symbols_rx", "block_id": 1, "subflow": 0, "n": 2},
        {"t": 1.2, "kind": "span.symbols_lost", "block_id": 1, "subflow": 0, "n": 2,
         "reason": "timeout"},
        {"t": 1.4, "kind": "span.symbols_tx", "block_id": 1, "subflow": 1, "n": 2,
         "first": False},
        {"t": 1.5, "kind": "span.symbols_rx", "block_id": 1, "subflow": 1, "n": 2},
        {"t": 1.5, "kind": "fmtcp.block_decoded", "block_id": 1, "k": 4,
         "received": 4, "overhead": 0, "wait": 0.35},
        {"t": 1.6, "kind": "conn.delivered", "block_id": 1, "bytes": 128},
        # Block 2 never delivers: stays open.
        {"t": 2.0, "kind": "span.block_open", "block_id": 2, "k": 4, "bytes": 128},
    ]


def _mp_records():
    """Two MPTCP blocks of two chunks each; dsn 1 is lost once."""
    return [
        {"t": 0.0, "kind": "span.chunk_tx", "dsn": 0, "block": 0, "subflow": 0,
         "size": 1400},
        {"t": 0.05, "kind": "span.chunk_tx", "dsn": 1, "block": 0, "subflow": 1,
         "size": 1400},
        {"t": 0.2, "kind": "span.chunk_rx", "dsn": 0, "subflow": 0},
        {"t": 0.25, "kind": "conn.delivered", "dsn": 0, "bytes": 1400},
        {"t": 0.3, "kind": "span.chunk_lost", "dsn": 1, "subflow": 1,
         "reason": "timeout"},
        {"t": 0.35, "kind": "span.chunk_retx", "dsn": 1, "subflow": 1},
        {"t": 0.5, "kind": "span.chunk_rx", "dsn": 1, "subflow": 1},
        {"t": 0.55, "kind": "conn.delivered", "dsn": 1, "bytes": 1400},
        # Block 1 opens (closing block 0) but never completes.
        {"t": 1.0, "kind": "span.chunk_tx", "dsn": 2, "block": 1, "subflow": 0,
         "size": 1400},
    ]


def test_fmtcp_stage_decomposition_and_conservation():
    collector = collect_spans(_fm_records())
    assert len(collector.finished) == 2
    assert collector.incomplete == 0
    assert len(collector.open_spans) == 1

    clean = next(s for s in collector.finished if s.block_id == 0)
    stages = clean.stage_durations()
    assert tuple(stages) == FMTCP_STAGES
    assert stages["sched_wait"] == pytest.approx(0.1)
    assert stages["transmit"] == pytest.approx(0.2)
    assert stages["decode_wait"] == pytest.approx(0.05)
    assert stages["reorder_wait"] == pytest.approx(0.15)
    assert clean.total_delay == pytest.approx(0.5)
    assert clean.conservation_error < 1e-12
    # Parent/child rollup: per-subflow symbol legs.
    assert clean.legs[0] == {"tx": 3, "rx": 3, "lost": 0}
    assert clean.legs[1] == {"tx": 2, "rx": 2, "lost": 0}


def test_fmtcp_loss_recovery_annotation():
    collector = collect_spans(_fm_records())
    lossy = next(s for s in collector.finished if s.block_id == 1)
    assert lossy.annotations["loss_episodes"] == 1
    # Lost at 1.2, repaired by the next symbol arrival at 1.5.
    assert lossy.annotations["loss_recovery_s"] == pytest.approx(0.3)
    assert lossy.legs[0]["lost"] == 2
    # The overlay is NOT part of the additive sum.
    assert lossy.conservation_error < 1e-12


def test_mptcp_stage_decomposition_and_conservation():
    collector = collect_spans(_mp_records())
    assert len(collector.finished) == 1
    span = collector.finished[0]
    assert span.protocol == "mptcp"
    stages = span.stage_durations()
    assert tuple(stages) == MPTCP_STAGES
    # open == first chunk pulled at 0.0; first arrival 0.2; last arrival
    # 0.5; last delivery 0.55.
    assert stages["transmit"] == pytest.approx(0.2)
    assert stages["fill_wait"] == pytest.approx(0.3)
    assert stages["reorder_wait"] == pytest.approx(0.05)
    assert span.conservation_error < 1e-12
    # dsn 1: lost at 0.3, recovered at 0.5.
    assert span.annotations["loss_recovery_s"] == pytest.approx(0.2)
    assert span.annotations["retransmits"] == 1
    assert span.legs[1] == {"tx": 2, "rx": 1, "lost": 1}
    # The final block never closes (no later block opened after it).
    assert len(collector.open_spans) == 1


def test_events_for_unknown_blocks_are_ignored():
    collector = collect_spans(
        [
            {"t": 0.5, "kind": "span.symbols_rx", "block_id": 99, "subflow": 0,
             "n": 1},
            {"t": 0.6, "kind": "conn.delivered", "block_id": 99, "bytes": 10},
            {"t": 0.7, "kind": "span.chunk_rx", "dsn": 42, "subflow": 0},
            {"t": 0.8, "kind": "conn.delivered", "dsn": 42, "bytes": 10},
        ]
    )
    assert collector.finished == []
    assert collector.open_spans == []
    assert collector.incomplete == 0


def test_live_attach_matches_offline_feed():
    from repro.sim.trace import TraceBus

    trace = TraceBus()
    live = SpanCollector()
    live.attach(trace)
    for record in _fm_records():
        fields = {k: v for k, v in record.items() if k not in ("t", "kind")}
        trace.emit(record["t"], record["kind"], **fields)
    live.detach()
    offline = collect_spans(_fm_records())
    assert len(live.finished) == len(offline.finished)
    for a, b in zip(live.finished, offline.finished):
        assert a.stage_durations() == b.stage_durations()
    # Detach really unsubscribes: further emits change nothing.
    for kind in SPAN_KINDS:
        assert not trace.has_subscribers(kind)


def test_summary_and_reports():
    records = _fm_records() + _mp_records()
    summary = collect_spans(records).summary()
    assert summary["finished"] == 3
    assert summary["max_conservation_error_s"] < 1e-12
    assert set(summary["stages"]) == {"fmtcp", "mptcp"}
    assert tuple(summary["stages"]["fmtcp"]) == FMTCP_STAGES + ("total",)

    report = "\n".join(spans_report(records))
    for stage in FMTCP_STAGES + MPTCP_STAGES:
        assert stage in report
    assert "conservation error" in report
    assert "loss recovery" in report

    critical = "\n".join(critical_path_report(records, top=2))
    assert "critical stage" in critical
    assert "legs:" in critical

    # Empty traces degrade to a hint, not a crash.
    assert "no finished block spans" in spans_report([])[0]
    assert "no finished block spans" in critical_path_report([])[0]


def test_span_enabled_run_is_behaviorally_identical():
    """TelemetryConfig(spans=True) must not move a single byte: the span
    emits draw no RNG and mutate nothing."""
    from repro.experiments.runner import run_transfer
    from repro.telemetry import TelemetryConfig
    from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs

    case = next(c for c in TABLE1_CASES if c.case_id == 2)
    for protocol in ("fmtcp", "mptcp"):
        plain = run_transfer(
            protocol, table1_path_configs(case), duration_s=2.0, seed=3
        )
        spanned = run_transfer(
            protocol,
            table1_path_configs(case),
            duration_s=2.0,
            seed=3,
            telemetry=TelemetryConfig(spans=True),
        )
        assert spanned.summary == plain.summary
        report = spanned.telemetry.spans
        assert report is not None and report["finished"] > 0
        assert report["max_conservation_error_s"] < 1e-9
