"""Stateful (model-based) property tests with hypothesis.

Each machine drives a core data structure through random operation
sequences while checking it against a trivially correct model.
"""

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.fountain.gf2 import Gf2Eliminator
from repro.mptcp.recv_buffer import ReorderBuffer
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue


class ReorderBufferMachine(RuleBasedStateMachine):
    """The reorder buffer must deliver 0..N exactly once, in order,
    regardless of arrival order, duplication, or interleaving."""

    @initialize(capacity=st.integers(min_value=1, max_value=16))
    def setup(self, capacity):
        self.capacity = capacity
        self.buffer = ReorderBuffer(capacity)
        self.delivered = []
        self.inserted = set()

    def _insertable(self):
        # Sequences the sender's flow-control invariant would permit.
        low = self.buffer.next_expected
        return [
            seq
            for seq in range(low, low + self.capacity)
            if seq not in self.inserted or seq < low
        ]

    @rule(data=st.data())
    def insert_valid(self, data):
        candidates = list(range(self.buffer.next_expected,
                                self.buffer.next_expected + self.capacity))
        seq = data.draw(st.sampled_from(candidates))
        delivered = self.buffer.insert(seq, seq)
        self.inserted.add(seq)
        self.delivered.extend(item for __, item in delivered)

    @rule(data=st.data())
    def insert_duplicate_or_old(self, data):
        seq = data.draw(st.integers(min_value=0, max_value=5))
        if seq < self.buffer.next_expected or seq in self.buffer._buffered:
            before = len(self.delivered)
            assert self.buffer.insert(seq, seq) == []
            assert len(self.delivered) == before

    @invariant()
    def delivery_is_a_prefix_in_order(self):
        assert self.delivered == list(range(len(self.delivered)))

    @invariant()
    def occupancy_bounded(self):
        assert self.buffer.occupancy <= self.capacity
        assert self.buffer.advertised_window >= 0


TestReorderBufferStateful = ReorderBufferMachine.TestCase
TestReorderBufferStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)


class Gf2Machine(RuleBasedStateMachine):
    """The eliminator's rank must always equal numpy-free brute-force rank
    of everything inserted, and solve() must invert the encoding."""

    @initialize(
        k=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def setup(self, k, seed):
        self.k = k
        self.rng = random.Random(seed)
        self.eliminator = Gf2Eliminator(k)
        self.parts = [self.rng.getrandbits(16) for __ in range(k)]
        self.rows = []

    def _encode(self, coeff):
        value = 0
        remaining = coeff
        while remaining:
            bit = remaining.bit_length() - 1
            value ^= self.parts[bit]
            remaining &= ~(1 << bit)
        return value

    def _model_rank(self):
        basis = []
        for row in self.rows:
            value = row
            for pivot in basis:
                value = min(value, value ^ pivot)
            if value:
                basis.append(value)
                basis.sort(reverse=True)
        return len(basis)

    @rule()
    def add_random_row(self):
        coeff = self.rng.getrandbits(self.k)
        self.rows.append(coeff)
        if coeff:
            self.eliminator.add_row(coeff, self._encode(coeff))
        else:
            assert not self.eliminator.add_row(coeff, 0)

    @rule()
    def add_unit_row(self):
        coeff = 1 << self.rng.randrange(self.k)
        self.rows.append(coeff)
        self.eliminator.add_row(coeff, self._encode(coeff))

    @invariant()
    def rank_matches_brute_force(self):
        assert self.eliminator.rank == self._model_rank()

    @invariant()
    def solve_recovers_parts_when_full(self):
        if self.eliminator.is_full_rank:
            assert self.eliminator.solve() == self.parts


TestGf2Stateful = Gf2Machine.TestCase
TestGf2Stateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)


class DropTailMachine(RuleBasedStateMachine):
    """The queue must behave exactly like a bounded FIFO list."""

    @initialize(capacity=st.integers(min_value=1, max_value=8))
    def setup(self, capacity):
        self.queue = DropTailQueue(capacity)
        self.model = []
        self.capacity = capacity

    @rule(size=st.integers(min_value=1, max_value=2000))
    def enqueue(self, size):
        packet = Packet(size=size, src="a", dst="b", src_port=1, dst_port=2)
        accepted = self.queue.try_enqueue(packet)
        if len(self.model) < self.capacity:
            assert accepted
            self.model.append(packet)
        else:
            assert not accepted

    @rule()
    def dequeue(self):
        packet = self.queue.dequeue()
        if self.model:
            assert packet is self.model.pop(0)
        else:
            assert packet is None

    @invariant()
    def length_and_bytes_match_model(self):
        assert len(self.queue) == len(self.model)
        assert self.queue.occupancy_bytes == sum(p.size for p in self.model)


TestDropTailStateful = DropTailMachine.TestCase
TestDropTailStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
