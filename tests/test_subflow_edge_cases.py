"""Edge-case tests for subflow ACK/loss machinery and congestion details."""

import pytest

from repro.tcp.congestion import RenoController
from repro.tcp.subflow import Subflow, SubflowAck, SubflowSink
from tests.conftest import make_single_path
from tests.test_tcp_subflow import ScriptedOwner, build


def test_duplicate_ack_for_same_seq_is_ignored():
    """A replayed ACK (echo for an already-acked seq) must not double-count."""
    network, subflow, owner, __ = build(supply=3)
    subflow.pump()
    network.sim.run()
    acked_before = subflow.packets_acked
    cwnd_before = subflow.cc.cwnd
    # Replay an ACK for seq 0 directly into the sender port handler.
    subflow._on_ack_packet(
        type("P", (), {"payload": SubflowAck(0, None)})()
    )
    assert subflow.packets_acked == acked_before
    assert subflow.cc.cwnd == cwnd_before


def test_ack_for_lost_declared_packet_clears_tombstone():
    network, subflow, owner, __ = build(supply=1)
    subflow.pump()
    # Forcefully declare the only packet lost, then let its real ACK land.
    subflow._declare_lost(0, "dupack")
    assert 0 in subflow._declared_lost
    network.sim.run()
    assert 0 not in subflow._declared_lost
    # The payload was reported lost exactly once.
    assert len(owner.lost) == 1


def test_recovery_episode_halves_window_once():
    """Multiple dup-ack losses within one flight halve cwnd only once."""
    network, subflow, owner, __ = build(loss=0.0, supply=30)
    subflow.cc.cwnd = 16.0
    subflow.cc.ssthresh = 8.0
    subflow.pump()
    # Manually declare three packets of the same flight lost.
    before = subflow.cc.fast_recoveries
    for seq in (0, 1, 2):
        subflow._declare_lost(seq, "dupack")
    assert subflow.cc.fast_recoveries == before + 1
    network.sim.run()


def test_timeout_counts_every_outstanding_packet():
    network, subflow, owner, __ = build(supply=2)  # exactly one window
    subflow.pump()
    in_flight = subflow.in_flight
    assert in_flight == 2
    subflow._on_rto()
    # Go-back-N: every outstanding packet was declared lost...
    assert subflow.packets_lost_timeout == in_flight
    assert len(owner.lost) == in_flight
    # ...and with the supply exhausted, nothing was re-sent.
    assert subflow.in_flight == 0
    network.sim.run()


def test_window_space_never_negative():
    network, subflow, owner, __ = build(supply=50)
    subflow.pump()
    subflow.cc.cwnd = 1.0  # collapse the window below in-flight
    assert subflow.window_space == 0


def test_tau_uses_oldest_packet():
    network, subflow, owner, __ = build(supply=2, delay=0.5)
    subflow.pump()
    network.sim.run(until=0.2)
    first_tau = subflow.tau
    assert first_tau == pytest.approx(0.2, abs=1e-6)


def test_sink_counts_received_packets():
    network, path, trace = make_single_path()
    owner = ScriptedOwner(7)
    subflow = Subflow(network.sim, path, owner)
    sink = SubflowSink(network.sim, path, subflow, on_segment=lambda sf, seg: None)
    subflow.pump()
    network.sim.run()
    assert sink.packets_received == 7


def test_loss_estimate_unprimed_is_zero():
    network, subflow, owner, __ = build(supply=0)
    assert subflow.loss_rate_estimate == 0.0
    assert subflow.aged_loss_estimate(5.0) == 0.0


def test_aged_estimate_decays_only_after_quiet():
    network, subflow, owner, __ = build(supply=0)
    subflow.loss_rate_estimate = 0.8
    # Never saw a loss timestamp: aging has no anchor, estimate unchanged.
    assert subflow.aged_loss_estimate(5.0) == pytest.approx(0.8)
    subflow.last_loss_observed_at = 0.0
    network.sim.schedule(5.0, lambda: None)
    network.sim.run()
    assert subflow.aged_loss_estimate(5.0) == pytest.approx(0.4)
    assert subflow.aged_loss_estimate(None) == pytest.approx(0.8)


def test_outstanding_payloads_sorted_by_seq():
    network, subflow, owner, __ = build(supply=4)
    subflow.pump()
    payloads = subflow.outstanding_payloads()
    assert [seq for seq, __ in payloads] == sorted(seq for seq, __ in payloads)
    network.sim.run()
    assert subflow.outstanding_payloads() == []


def test_custom_initial_ssthresh():
    cc = RenoController(initial_cwnd=2.0, initial_ssthresh=4.0)
    cc.on_ack()
    cc.on_ack()  # cwnd 4 -> leaves slow start
    assert not cc.in_slow_start()
