"""Dynamic subflow lifecycle: JOINING handshakes, runtime add/remove,
handover, and graceful degradation when paths disappear mid-transfer.

The state machine lives in :class:`repro.tcp.subflow.Subflow` (state is
*derived*, so it can never disagree with behaviour); the connection-level
policies live in ``FmtcpConnection`` / ``MptcpConnection``
(``add_subflow`` / ``remove_subflow``) and differ by design: FMTCP writes
abandoned symbols off and lets the EAT allocator route fresh ones, MPTCP
owes the receiver those exact bytes and reinjects them.
"""

import pytest

from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.faults import PathChurnController
from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.net.topology import PathConfig, build_two_path_network
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.tcp.subflow import SUBFLOW_STATES, Subflow, SubflowOwner, SubflowSink
from repro.workloads.sources import BulkSource
from tests.conftest import make_single_path


class RecordingOwner(SubflowOwner):
    """Counts lifecycle callbacks; supplies nothing by default."""

    def __init__(self, supply=0, size=1000):
        self.supply = supply
        self.size = size
        self.ready = []
        self.delivered = []
        self.lost = []

    def next_payload(self, subflow):
        if self.supply <= 0:
            return None
        self.supply -= 1
        return f"p{self.supply}", self.size

    def on_payload_delivered(self, subflow, info):
        self.delivered.append(info.payload)

    def on_payload_lost(self, subflow, info, reason):
        self.lost.append((info.payload, reason))

    def on_subflow_ready(self, subflow):
        self.ready.append(subflow.subflow_id)


def build_network(n_paths=2, bandwidth=4e6, delay=0.02, seed=2, trace=None):
    configs = [
        PathConfig(bandwidth_bps=bandwidth, delay_s=delay) for __ in range(n_paths)
    ]
    return build_two_path_network(
        configs, rng=RngStreams(seed), trace=trace or TraceBus()
    )


def build_connection(protocol, paths, network, trace, total_bytes=400_000,
                     fmtcp_config=None, mptcp_config=None, seed=2):
    delivered = []
    if protocol == "fmtcp":
        connection = FmtcpConnection(
            network.sim, paths, BulkSource(total_bytes=total_bytes),
            config=fmtcp_config or FmtcpConfig(), trace=trace,
            rng=RngStreams(seed),
            sink=lambda block_id, data: delivered.append(block_id),
        )
    else:
        connection = MptcpConnection(
            network.sim, paths, BulkSource(total_bytes=total_bytes),
            config=mptcp_config or MptcpConfig(), trace=trace,
            sink=lambda chunk: delivered.append(chunk.dsn),
        )
    return connection, delivered


# ----------------------------------------------------------------------
# The state machine itself.
# ----------------------------------------------------------------------
def test_default_subflow_is_born_active():
    network, path, __ = make_single_path()
    subflow = Subflow(network.sim, path, RecordingOwner())
    assert subflow.state == "active"
    assert subflow.usable
    assert not subflow.is_joining and not subflow.is_closed


def test_join_delay_validation():
    network, path, __ = make_single_path()
    with pytest.raises(ValueError):
        Subflow(network.sim, path, RecordingOwner(), join_delay_s=-0.1)


def test_joining_subflow_holds_fire_until_handshake_completes():
    network, path, trace = make_single_path()
    records = []
    trace.subscribe("subflow.join", records.append)
    trace.subscribe("subflow.active", records.append)
    owner = RecordingOwner(supply=5)
    subflow = Subflow(
        network.sim, path, owner, subflow_id=7, join_delay_s=0.5, trace=trace
    )
    SubflowSink(network.sim, path, subflow, on_segment=lambda sf, seg: None)
    assert subflow.state == "joining"
    assert not subflow.usable
    subflow.pump()  # must be a no-op while joining
    assert subflow.packets_sent == 0
    network.sim.run(until=0.4)
    assert subflow.state == "joining" and subflow.packets_sent == 0
    network.sim.run()
    assert subflow.state == "active"
    assert owner.ready == [7]  # on_subflow_ready fired exactly once
    assert len(owner.delivered) == 5  # and the handshake pump sent the data
    assert [r.kind for r in records] == ["subflow.join", "subflow.active"]
    assert records[1]["subflow"] == 7
    assert records[1].time == pytest.approx(0.5)


def test_close_cancels_pending_join():
    network, path, __ = make_single_path()
    owner = RecordingOwner(supply=5)
    subflow = Subflow(network.sim, path, owner, join_delay_s=0.5)
    subflow.close()
    assert subflow.state == "closed"
    network.sim.run()
    # The cancelled handshake never completes: no ready hook, no data.
    assert owner.ready == []
    assert subflow.packets_sent == 0


def test_shutdown_drains_outstanding_in_sequence_order():
    network, path, trace = make_single_path(bandwidth=8e3)  # 1 s per packet
    closed = []
    trace.subscribe("subflow.closed", closed.append)
    owner = RecordingOwner(supply=4)
    subflow = Subflow(network.sim, path, owner, subflow_id=3, trace=trace)
    SubflowSink(network.sim, path, subflow, on_segment=lambda sf, seg: None)
    subflow.pump()
    assert subflow.in_flight > 0
    infos = subflow.shutdown()
    assert [info.seq for info in infos] == sorted(info.seq for info in infos)
    assert len(infos) >= 1
    assert subflow.state == "closed" and not subflow.usable
    assert subflow.in_flight == 0
    assert not subflow.timer_armed
    # Shutdown is administrative: the congestion loss hooks must NOT fire.
    assert owner.lost == []
    assert closed and closed[0]["drained"] == len(infos)
    # The simulation still drains cleanly (no leaked timers or callbacks).
    network.sim.run()


def test_state_vocabulary_is_stable():
    assert SUBFLOW_STATES == ("joining", "active", "suspect", "closed")


# ----------------------------------------------------------------------
# Connection-level add/remove: FMTCP.
# ----------------------------------------------------------------------
def test_fmtcp_add_subflow_mid_transfer_joins_then_carries():
    trace = TraceBus()
    added = []
    trace.subscribe("conn.subflow_added", added.append)
    network, paths = build_network(trace=trace)
    connection, delivered = build_connection(
        "fmtcp", paths[:1], network, trace, total_bytes=1_500_000
    )
    connection.start()
    network.sim.run(until=1.0)
    single_path_bytes = connection.delivered_bytes
    new = connection.add_subflow(paths[1])
    assert new.state == "joining"
    assert new.subflow_id == 1
    network.sim.run(until=1.0 + 2.5 * paths[1].one_way_delay_s)
    assert new.state == "active"
    network.sim.run()
    assert connection.delivered_bytes > single_path_bytes
    assert new.packets_acked > 0  # the joined path actually carried symbols
    assert delivered == sorted(delivered)
    assert added and added[0]["subflow"] == 1 and added[0]["path"] == "path1"


def test_fmtcp_remove_subflow_writes_off_symbols_and_completes():
    trace = TraceBus()
    removed = []
    trace.subscribe("conn.subflow_removed", removed.append)
    network, paths = build_network(trace=trace)
    connection, delivered = build_connection("fmtcp", paths, network, trace)
    connection.start()
    network.sim.run(until=0.5)
    assert connection.subflows[1].in_flight > 0
    lost_before = connection.sender.symbols_lost
    abandoned = connection.remove_subflow(1)
    assert abandoned > 0
    # FMTCP never retransmits: the in-flight symbols are written off ...
    assert connection.sender.symbols_lost > lost_before
    assert len(connection.subflows) == 1
    network.sim.run()
    # ... and fresh fountain symbols finish the transfer on the survivor.
    expected_blocks = -(-400_000 // FmtcpConfig().block_bytes)
    assert delivered == list(range(expected_blocks))
    assert removed and removed[0]["abandoned"] == abandoned


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
def test_remove_unknown_subflow_raises(protocol):
    network, paths = build_network()
    connection, __ = build_connection(protocol, paths, network, TraceBus())
    with pytest.raises(ValueError):
        connection.remove_subflow(99)
    connection.close()


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
def test_subflow_ids_are_never_reused(protocol):
    network, paths = build_network()
    connection, __ = build_connection(protocol, paths, network, TraceBus())
    connection.remove_subflow(1)
    replacement = connection.add_subflow(paths[1], join_delay_s=0.0)
    # A re-associated path gets a fresh identity and congestion state.
    assert replacement.subflow_id == 2
    assert {s.subflow_id for s in connection.subflows} == {0, 2}
    connection.close()


# ----------------------------------------------------------------------
# Connection-level add/remove: MPTCP.
# ----------------------------------------------------------------------
def test_mptcp_remove_subflow_reinjects_unacked_chunks():
    trace = TraceBus()
    removed = []
    trace.subscribe("conn.subflow_removed", removed.append)
    network, paths = build_network(trace=trace)
    connection, delivered = build_connection("mptcp", paths, network, trace)
    connection.start()
    network.sim.run(until=0.5)
    assert connection.subflows[1].in_flight > 0
    reinjected = connection.remove_subflow(1)
    assert reinjected > 0
    assert connection.chunks_reinjected >= reinjected
    network.sim.run()
    # MPTCP owes the receiver those exact bytes: exactly-once, in-order.
    assert connection.delivered_bytes == 400_000
    assert delivered == list(range(len(delivered)))
    assert removed and removed[0]["reinjected"] == reinjected


def test_mptcp_add_subflow_mid_transfer():
    network, paths = build_network()
    connection, delivered = build_connection(
        "mptcp", paths[:1], network, TraceBus(), total_bytes=600_000
    )
    connection.start()
    network.sim.run(until=1.0)
    new = connection.add_subflow(paths[1])
    network.sim.run()
    assert connection.delivered_bytes == 600_000
    assert delivered == list(range(len(delivered)))
    assert new.packets_acked > 0


def test_mptcp_total_blackout_orphans_then_recovers():
    """Removing the last usable subflow parks its chunks in the orphan
    queue; a later add_subflow drains them before fresh data."""
    network, paths = build_network()
    connection, delivered = build_connection("mptcp", paths[:1], network, TraceBus())
    connection.start()
    network.sim.run(until=0.5)
    owed = connection.remove_subflow(0)
    assert owed > 0
    assert len(connection._orphan_chunks) == owed
    connection.add_subflow(paths[1], join_delay_s=0.05)
    network.sim.run()
    assert not connection._orphan_chunks
    assert connection.delivered_bytes == 400_000
    assert delivered == list(range(len(delivered)))


# ----------------------------------------------------------------------
# Handover through the churn controller (the injector's lifecycle handler).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
def test_handover_moves_transfer_to_new_path(protocol):
    trace = TraceBus()
    churn = []
    for kind in ("churn.handover", "churn.path_down", "churn.path_up"):
        trace.subscribe(kind, churn.append)
    network, paths = build_network(trace=trace)
    connection, delivered = build_connection(protocol, paths[:1], network, trace)
    network.detach_path(paths[1])
    controller = PathChurnController(
        network.sim, paths, connection, network=network,
        active_paths=(0,), trace=trace,
    )
    network.sim.schedule_at(1.0, controller.handover, 0, 1, 0.2)
    connection.start()
    network.sim.run(until=30.0)
    assert controller.handovers == 1
    assert controller.path_downs == 1 and controller.path_ups == 1
    assert controller.subflow_on(0) is None
    assert controller.subflow_on(1) is not None
    assert [r.kind for r in churn] == [
        "churn.handover", "churn.path_down", "churn.path_up"
    ]
    assert churn[2].time == pytest.approx(1.2)  # break_s gap honoured
    # The transfer survived the blackout and finished on the new path.
    if protocol == "fmtcp":
        assert delivered == list(range(-(-400_000 // FmtcpConfig().block_bytes)))
    else:
        assert connection.delivered_bytes == 400_000
        assert delivered == list(range(len(delivered)))
    connection.close()


def test_duplicate_path_up_is_a_noop():
    network, paths = build_network()
    connection, __ = build_connection("mptcp", paths, network, TraceBus())
    controller = PathChurnController(
        network.sim, paths, connection, network=network
    )
    controller.path_up(1)  # already attached
    assert controller.path_ups == 0
    assert len(connection.subflows) == 2
    connection.close()


# ----------------------------------------------------------------------
# Satellite: HOL-blocking subflow removed mid-transfer unblocks the
# receive buffer (reinjection fills the DSN gap).
# ----------------------------------------------------------------------
def test_removing_hol_blocking_subflow_unblocks_recv_buffer():
    network, paths = build_network()
    # failover disabled: removal (not suspect-reinjection) must do the work.
    config = MptcpConfig(failover_rto_threshold=None)
    connection, delivered = build_connection(
        "mptcp", paths, network, TraceBus(), mptcp_config=config,
        total_bytes=2_000_000,
    )
    connection.start()

    def kill_path_1():
        for link in (*paths[1].forward_links, *paths[1].reverse_links):
            link.set_down(True)

    network.sim.schedule_at(0.2, kill_path_1)
    network.sim.run(until=4.0)
    # Chunks lost on the dead path leave DSN gaps: the reorder buffer is
    # holding fast-path data it cannot deliver, and delivery has stalled.
    assert connection.reorder_buffer.occupancy > 0
    stalled_bytes = connection.delivered_bytes
    assert stalled_bytes < 2_000_000

    reinjected = connection.remove_subflow(1)
    assert reinjected > 0
    network.sim.run()
    # Reinjection fills the gaps: the buffer drains and the transfer ends.
    assert connection.reorder_buffer.occupancy == 0
    assert connection.delivered_bytes == 2_000_000
    assert delivered == list(range(len(delivered)))
