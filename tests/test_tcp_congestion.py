"""Unit tests for congestion controllers."""

import pytest

from repro.tcp.congestion import (
    LiaCoupledController,
    LiaGroup,
    RenoController,
    make_controller,
)


# ----------------------------------------------------------------------
# Reno.
# ----------------------------------------------------------------------
def test_slow_start_doubles_per_window():
    cc = RenoController(initial_cwnd=2.0)
    for __ in range(2):
        cc.on_ack()
    assert cc.cwnd == pytest.approx(4.0)


def test_congestion_avoidance_linear_growth():
    cc = RenoController(initial_cwnd=10.0, initial_ssthresh=10.0)
    assert not cc.in_slow_start()
    start = cc.cwnd
    for __ in range(10):  # one full window of ACKs -> +~1 packet
        cc.on_ack()
    assert cc.cwnd == pytest.approx(start + 1.0, rel=0.05)


def test_fast_loss_halves_window():
    cc = RenoController(initial_cwnd=16.0, initial_ssthresh=8.0)
    cc.cwnd = 20.0
    cc.on_fast_loss()
    assert cc.cwnd == pytest.approx(10.0)
    assert cc.ssthresh == pytest.approx(10.0)
    assert cc.fast_recoveries == 1


def test_timeout_collapses_to_one():
    cc = RenoController(initial_cwnd=16.0)
    cc.cwnd = 20.0
    cc.on_timeout()
    assert cc.cwnd == pytest.approx(1.0)
    assert cc.ssthresh == pytest.approx(10.0)
    assert cc.timeouts == 1


def test_window_floor_is_one_packet():
    cc = RenoController(initial_cwnd=1.0)
    cc.on_timeout()
    assert cc.window == 1
    assert cc.can_send(0)
    assert not cc.can_send(1)


def test_ssthresh_floor_is_two():
    cc = RenoController(initial_cwnd=1.0)
    cc.on_fast_loss()
    assert cc.ssthresh == pytest.approx(2.0)


def test_max_cwnd_cap():
    cc = RenoController(initial_cwnd=2.0, max_cwnd=5.0, initial_ssthresh=100.0)
    for __ in range(20):
        cc.on_ack()
    assert cc.cwnd == pytest.approx(5.0)


def test_slow_start_exits_at_ssthresh():
    cc = RenoController(initial_cwnd=2.0, initial_ssthresh=4.0)
    assert cc.in_slow_start()
    cc.on_ack()
    cc.on_ack()
    assert not cc.in_slow_start()


# ----------------------------------------------------------------------
# LIA.
# ----------------------------------------------------------------------
def make_lia_pair(rtt_a=0.1, rtt_b=0.1):
    group = LiaGroup()
    a = LiaCoupledController(group, lambda: rtt_a, initial_cwnd=10.0)
    b = LiaCoupledController(group, lambda: rtt_b, initial_cwnd=10.0)
    a.ssthresh = b.ssthresh = 1.0  # force congestion avoidance
    return group, a, b


def test_lia_alpha_equal_paths():
    group, a, b = make_lia_pair()
    # Symmetric case: alpha = total * (w/rtt^2) / (2w/rtt)^2 = total/(4w) = 0.5
    assert group.alpha() == pytest.approx(0.5)


def test_lia_increase_capped_by_uncoupled_reno():
    group, a, b = make_lia_pair()
    before = a.cwnd
    a.on_ack()
    increase = a.cwnd - before
    assert increase <= 1.0 / before + 1e-12


def test_lia_total_less_aggressive_than_two_renos():
    group, a, b = make_lia_pair()
    for __ in range(100):
        a.on_ack()
        b.on_ack()
    lia_growth = (a.cwnd - 10.0) + (b.cwnd - 10.0)
    reno = RenoController(initial_cwnd=10.0, initial_ssthresh=1.0)
    for __ in range(100):
        reno.on_ack()
    assert lia_growth < 2 * (reno.cwnd - 10.0)


def test_lia_loss_reactions_match_reno_shape():
    group, a, b = make_lia_pair()
    a.cwnd = 12.0
    a.on_fast_loss()
    assert a.cwnd == pytest.approx(6.0)
    a.on_timeout()
    assert a.cwnd == pytest.approx(1.0)


def test_lia_slow_start_like_reno():
    group = LiaGroup()
    cc = LiaCoupledController(group, lambda: 0.1, initial_cwnd=2.0)
    cc.on_ack()
    assert cc.cwnd == pytest.approx(3.0)


# ----------------------------------------------------------------------
# Factory.
# ----------------------------------------------------------------------
def test_make_controller_reno():
    assert isinstance(make_controller("reno"), RenoController)


def test_make_controller_lia_requires_group():
    with pytest.raises(ValueError):
        make_controller("lia")


def test_make_controller_unknown_kind():
    with pytest.raises(ValueError):
        make_controller("cubic")
