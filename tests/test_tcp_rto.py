"""Unit tests for the RFC 6298 RTO estimator."""

import pytest

from repro.tcp.rto import RtoEstimator


def test_initial_rto_before_any_sample():
    estimator = RtoEstimator(initial_rto=1.0)
    assert estimator.rto == pytest.approx(1.0)
    assert estimator.srtt is None


def test_first_sample_initialises_srtt_and_rttvar():
    estimator = RtoEstimator(min_rto=1e-9)
    estimator.on_measurement(0.2)
    assert estimator.srtt == pytest.approx(0.2)
    assert estimator.rttvar == pytest.approx(0.1)
    assert estimator.rto == pytest.approx(0.2 + 4 * 0.1)


def test_ewma_recursion_matches_rfc():
    estimator = RtoEstimator(min_rto=1e-9)
    estimator.on_measurement(0.2)
    estimator.on_measurement(0.3)
    # RFC 6298: rttvar' = 3/4*0.1 + 1/4*|0.2-0.3|; srtt' = 7/8*0.2 + 1/8*0.3
    assert estimator.rttvar == pytest.approx(0.75 * 0.1 + 0.25 * 0.1)
    assert estimator.srtt == pytest.approx(0.875 * 0.2 + 0.125 * 0.3)


def test_constant_rtt_converges_to_min_rto_floor():
    estimator = RtoEstimator(min_rto=0.2)
    for __ in range(200):
        estimator.on_measurement(0.05)
    # rttvar decays toward 0 -> rto would go to ~srtt, clamped to min.
    assert estimator.rto == pytest.approx(0.2)


def test_backoff_doubles_and_clamps():
    estimator = RtoEstimator(min_rto=0.2, max_rto=2.0)
    estimator.on_measurement(0.1)
    base = estimator.rto
    estimator.on_timeout()
    assert estimator.rto == pytest.approx(min(base * 2, 2.0))
    for __ in range(10):
        estimator.on_timeout()
    assert estimator.rto == pytest.approx(2.0)


def test_measurement_resets_backoff():
    estimator = RtoEstimator(min_rto=0.2, max_rto=60.0)
    estimator.on_measurement(0.3)
    before = estimator.rto
    estimator.on_timeout()
    assert estimator.rto > before
    estimator.on_measurement(0.3)
    # Back-off factor cleared; rto returns to the (slightly decayed) base.
    assert estimator.rto <= before


def test_reset_backoff_explicit():
    estimator = RtoEstimator()
    estimator.on_measurement(0.3)
    base = estimator.rto
    estimator.on_timeout()
    estimator.reset_backoff()
    assert estimator.rto == pytest.approx(base)


def test_non_positive_rtt_rejected():
    estimator = RtoEstimator()
    with pytest.raises(ValueError):
        estimator.on_measurement(0.0)


def test_invalid_bounds_rejected():
    with pytest.raises(ValueError):
        RtoEstimator(min_rto=0.0)
    with pytest.raises(ValueError):
        RtoEstimator(min_rto=1.0, max_rto=0.5)


def test_sample_counter():
    estimator = RtoEstimator()
    for __ in range(3):
        estimator.on_measurement(0.1)
    assert estimator.samples == 3
