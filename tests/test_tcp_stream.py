"""Tests for the plain single-path TCP connection."""

import pytest

from repro.metrics.collectors import MetricsSuite
from repro.tcp.stream import TcpConfig, TcpConnection
from repro.workloads.sources import BulkSource, RandomPayloadSource
from tests.conftest import make_single_path


def run_tcp(source, loss=0.0, duration=30.0, config=None, sink=None, seed=7):
    network, path, trace = make_single_path(loss=loss, seed=seed)
    metrics = MetricsSuite(trace)
    connection = TcpConnection(
        network.sim, path, source, config=config or TcpConfig(), trace=trace,
        sink=sink,
    )
    connection.start()
    network.sim.run(until=duration)
    return connection, metrics


def test_clean_path_delivers_all_bytes_in_order():
    source = RandomPayloadSource(total_bytes=150_000)
    received = bytearray()
    connection, __ = run_tcp(
        source, sink=lambda chunk: received.extend(chunk.payload_bytes)
    )
    assert bytes(received) == bytes(source.transcript)
    assert connection.delivered_bytes == 150_000


def test_lossy_path_delivers_exactly_once():
    source = RandomPayloadSource(total_bytes=120_000)
    received = bytearray()
    connection, __ = run_tcp(
        source,
        loss=0.2,
        duration=120.0,
        sink=lambda chunk: received.extend(chunk.payload_bytes),
    )
    assert bytes(received) == bytes(source.transcript)
    assert connection.chunks_retransmitted > 0


def test_no_retransmissions_without_loss():
    connection, __ = run_tcp(BulkSource(400_000), duration=10.0)
    assert connection.chunks_retransmitted == 0


def test_flow_control_limits_outstanding():
    config = TcpConfig(recv_buffer_chunks=4)
    connection, __ = run_tcp(BulkSource(), duration=3.0, config=config)
    assert connection._next_seq - connection.cumulative_acked <= 4


def test_block_done_trace_events():
    from repro.sim.trace import TraceBus

    network, path, trace = make_single_path()
    records = []
    trace.subscribe("conn.block_done", records.append)
    connection = TcpConnection(network.sim, path, BulkSource(), trace=trace)
    connection.start()
    network.sim.run(until=5.0)
    assert records
    assert [record["block_id"] for record in records] == list(range(len(records)))


def test_goodput_matches_delivered_bytes():
    connection, metrics = run_tcp(BulkSource(), duration=5.0)
    assert metrics.goodput.total_bytes == connection.delivered_bytes
    assert connection.delivered_bytes > 0


def test_throughput_tracks_reno_on_lossy_path():
    """Goodput on a 5 % path should sit in the PFTK ballpark."""
    from repro.analysis.throughput import pftk_throughput_pps

    connection, metrics = run_tcp(BulkSource(), loss=0.05, duration=60.0)
    measured_pps = metrics.goodput.total_bytes / 1400 / 60.0
    rtt = connection.subflow.srtt
    predicted_pps = pftk_throughput_pps(rtt, connection.subflow.rto_value, 0.05)
    assert 0.3 < measured_pps / predicted_pps < 3.0


def test_app_limited_source():
    class Dribble:
        def __init__(self):
            self.granted = 0

        def pull(self, max_bytes):
            if self.granted >= 2:
                return 0
            self.granted += 1
            return 500

    connection, __ = run_tcp(Dribble(), duration=2.0)
    assert connection.delivered_bytes == 1000


def test_close_releases_ports():
    connection, __ = run_tcp(BulkSource(10_000), duration=5.0)
    connection.close()
    connection.subflow.src_node.bind(connection.subflow.src_port, lambda p: None)
