"""Integration-style unit tests for the TCP subflow machinery."""

import pytest

from repro.tcp.congestion import RenoController
from repro.tcp.subflow import Subflow, SubflowOwner, SubflowSink
from tests.conftest import make_single_path


class ScriptedOwner(SubflowOwner):
    """Supplies ``supply`` payloads then dries up; records callbacks."""

    def __init__(self, supply: int, size: int = 1000, resend_lost: bool = False):
        self.remaining = supply
        self.size = size
        self.resend_lost = resend_lost
        self.delivered = []
        self.lost = []
        self.feedback = []
        self._resend_queue = []

    def next_payload(self, subflow):
        if self._resend_queue:
            return self._resend_queue.pop(0), self.size
        if self.remaining <= 0:
            return None
        self.remaining -= 1
        return f"payload-{self.remaining}", self.size

    def on_payload_delivered(self, subflow, info):
        self.delivered.append(info.payload)

    def on_payload_lost(self, subflow, info, reason):
        self.lost.append((info.payload, reason))
        if self.resend_lost:
            self._resend_queue.append(info.payload)

    def on_ack_feedback(self, subflow, feedback):
        self.feedback.append(feedback)


def build(loss=0.0, supply=10, delay=0.010, resend_lost=False, feedback=None):
    network, path, trace = make_single_path(loss=loss, delay=delay)
    owner = ScriptedOwner(supply, resend_lost=resend_lost)
    subflow = Subflow(network.sim, path, owner, subflow_id=0)
    sink = SubflowSink(
        network.sim,
        path,
        subflow,
        on_segment=lambda sf, segment: None,
        feedback_provider=feedback,
    )
    return network, subflow, owner, sink


def test_clean_path_delivers_everything():
    network, subflow, owner, __ = build(supply=20)
    subflow.pump()
    network.sim.run()
    assert len(owner.delivered) == 20
    assert owner.lost == []
    assert subflow.in_flight == 0


def test_cwnd_limits_initial_burst():
    network, subflow, owner, __ = build(supply=100)
    subflow.pump()
    # Before any ACK, only the initial window may be outstanding.
    assert subflow.in_flight == subflow.cc.window
    network.sim.run()
    assert len(owner.delivered) == 100


def test_rtt_measured_close_to_path_rtt():
    network, subflow, owner, __ = build(supply=30, delay=0.050)
    subflow.pump()
    network.sim.run()
    assert subflow.rto.srtt == pytest.approx(0.1, rel=0.3)


def test_lossy_path_reports_losses_and_recovers_window_space():
    network, subflow, owner, __ = build(loss=0.3, supply=200)
    subflow.pump()
    network.sim.run(until=60.0)
    assert owner.lost, "expected losses on a 30% path"
    assert len(owner.delivered) + len(owner.lost) == 200
    assert subflow.in_flight == 0


def test_loss_reasons_are_dupack_or_timeout():
    network, subflow, owner, __ = build(loss=0.2, supply=300)
    subflow.pump()
    network.sim.run(until=60.0)
    reasons = {reason for __, reason in owner.lost}
    assert reasons <= {"dupack", "timeout"}
    assert "dupack" in reasons  # enough traffic for fast detection


def test_resend_lost_payloads_achieves_reliability():
    network, subflow, owner, __ = build(loss=0.25, supply=100, resend_lost=True)
    subflow.pump()
    network.sim.run(until=120.0)
    # Every one of the 100 distinct payloads eventually delivered.
    assert len(set(owner.delivered)) == 100


def test_loss_estimate_converges_to_path_rate():
    network, subflow, owner, __ = build(loss=0.15, supply=3000)
    subflow.pump()
    network.sim.run(until=300.0)
    assert subflow.loss_rate_estimate == pytest.approx(0.15, abs=0.08)


def test_feedback_piggybacked_on_acks():
    network, path, trace = make_single_path()
    owner = ScriptedOwner(5)
    subflow = Subflow(network.sim, path, owner, subflow_id=0)
    SubflowSink(
        network.sim,
        path,
        subflow,
        on_segment=lambda sf, segment: None,
        feedback_provider=lambda sf, segment: {"echo_of": segment.seq},
    )
    subflow.pump()
    network.sim.run()
    assert [fb["echo_of"] for fb in owner.feedback] == [0, 1, 2, 3, 4]


def test_window_space_and_tau():
    network, subflow, owner, __ = build(supply=3, delay=0.050)
    subflow.pump()
    assert subflow.window_space == max(0, subflow.cc.window - 3) or subflow.in_flight == 3
    assert subflow.tau == 0.0  # nothing elapsed yet
    network.sim.run(until=0.03)
    assert subflow.tau == pytest.approx(0.03, abs=1e-6)
    network.sim.run()
    assert subflow.tau == 0.0  # all acked


def test_congestion_window_reduced_on_loss():
    network, subflow, owner, __ = build(loss=0.3, supply=400)
    initial_window = subflow.cc.window
    subflow.pump()
    network.sim.run(until=30.0)
    assert subflow.cc.fast_recoveries + subflow.cc.timeouts > 0
    assert subflow.packets_lost_dupack + subflow.packets_lost_timeout == len(owner.lost)
    assert initial_window >= 1  # sanity


def test_sequence_numbers_never_reused():
    network, subflow, owner, __ = build(loss=0.2, supply=50, resend_lost=True)
    seen = []
    original = subflow._transmit

    def spy(payload, size):
        seen.append(subflow.next_seq)
        original(payload, size)

    subflow._transmit = spy
    subflow.pump()
    network.sim.run(until=60.0)
    assert len(seen) == len(set(seen))


def test_oversized_payload_rejected():
    network, subflow, owner, __ = build()
    with pytest.raises(ValueError):
        subflow._transmit("too-big", subflow.mss + 1)


def test_close_unbinds_and_stops_timer():
    network, subflow, owner, sink = build(supply=1)
    subflow.pump()
    network.sim.run()
    subflow.close()
    sink.close()
    # Port can be rebound after close.
    subflow.src_node.bind(subflow.src_port, lambda packet: None)


def test_custom_congestion_controller_used():
    network, path, trace = make_single_path()
    cc = RenoController(initial_cwnd=1.0)
    owner = ScriptedOwner(10)
    subflow = Subflow(network.sim, path, owner, congestion=cc)
    SubflowSink(network.sim, path, subflow, on_segment=lambda sf, segment: None)
    subflow.pump()
    assert subflow.in_flight == 1  # initial cwnd of exactly one packet
    network.sim.run()
    assert len(owner.delivered) == 10
