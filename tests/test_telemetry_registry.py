"""Unit tests for counters, gauges and P² streaming histograms."""

import random

import pytest

from repro.metrics.stats import percentile as exact_percentile
from repro.telemetry.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    P2Quantile,
    StreamingHistogram,
)


# ----------------------------------------------------------------------
# Counter / Gauge.
# ----------------------------------------------------------------------
def test_counter_increments():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_counter_rejects_negative():
    counter = Counter("c")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_tracks_extremes():
    gauge = Gauge("g")
    assert gauge.value is None
    for value in (3.0, -1.0, 7.0, 2.0):
        gauge.set(value)
    assert gauge.value == 2.0
    assert gauge.min_seen == -1.0
    assert gauge.max_seen == 7.0
    assert gauge.updates == 4


# ----------------------------------------------------------------------
# P² quantile estimation.
# ----------------------------------------------------------------------
def test_p2_rejects_bad_quantile():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


def test_p2_exact_for_small_samples():
    estimator = P2Quantile(0.5)
    assert estimator.value is None
    for x in (5.0, 1.0, 3.0):
        estimator.observe(x)
    assert estimator.value == pytest.approx(3.0)


@pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
def test_p2_tracks_uniform_distribution(q):
    rng = random.Random(42)
    estimator = P2Quantile(q)
    samples = [rng.uniform(0.0, 100.0) for __ in range(5000)]
    for x in samples:
        estimator.observe(x)
    exact = exact_percentile(samples, q * 100.0)
    # P² is an approximation; a couple of units on a 0-100 scale is ample
    # for telemetry percentiles.
    assert estimator.value == pytest.approx(exact, abs=2.5)


def test_p2_tracks_skewed_distribution():
    rng = random.Random(7)
    estimator = P2Quantile(0.95)
    samples = [rng.expovariate(1.0 / 20.0) for __ in range(8000)]
    for x in samples:
        estimator.observe(x)
    exact = exact_percentile(samples, 95.0)
    assert estimator.value == pytest.approx(exact, rel=0.1)


def test_p2_constant_memory():
    estimator = P2Quantile(0.5)
    for x in range(10_000):
        estimator.observe(float(x))
    assert len(estimator._heights) == 5
    assert estimator.count == 10_000


# ----------------------------------------------------------------------
# StreamingHistogram.
# ----------------------------------------------------------------------
def test_histogram_snapshot_keys():
    histogram = StreamingHistogram("h")
    for x in range(1, 101):
        histogram.observe(float(x))
    snap = histogram.snapshot()
    assert snap["count"] == 100.0
    assert snap["min"] == 1.0
    assert snap["max"] == 100.0
    assert snap["mean"] == pytest.approx(50.5)
    assert snap["p50"] == pytest.approx(50.5, abs=3.0)
    assert snap["p95"] == pytest.approx(95.0, abs=3.0)
    assert snap["p99"] == pytest.approx(99.0, abs=3.0)


def test_histogram_unknown_percentile_raises():
    histogram = StreamingHistogram("h")
    histogram.observe(1.0)
    with pytest.raises(KeyError):
        histogram.percentile(0.75)


def test_histogram_empty_is_safe():
    histogram = StreamingHistogram("h")
    assert histogram.mean == 0.0
    assert histogram.percentile(0.5) is None
    assert histogram.snapshot()["p50"] is None


# ----------------------------------------------------------------------
# MetricsRegistry.
# ----------------------------------------------------------------------
def test_registry_get_or_create_returns_same_object():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")
    assert len(registry) == 3
    assert registry.names() == ["a", "b", "c"]


def test_registry_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")


def test_registry_snapshot_and_render():
    registry = MetricsRegistry()
    registry.counter("sent").inc(3)
    registry.gauge("cwnd").set(12.0)
    registry.histogram("rtt").observe(0.1)
    snap = registry.snapshot()
    assert snap["sent"] == 3
    assert snap["cwnd"] == 12.0
    assert snap["rtt"]["count"] == 1.0
    rendered = "\n".join(registry.render())
    assert "sent: 3" in rendered
    assert "cwnd: 12" in rendered
    assert "rtt:" in rendered


def test_registry_get_missing_returns_none():
    assert MetricsRegistry().get("nope") is None
