"""Samplers and the telemetry session: series content, clean teardown,
and the zero-cost-when-off guarantee."""

import pytest

from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.net.topology import PathConfig
from repro.sim.rng import RngStreams
from repro.telemetry import (
    MetricsRegistry,
    PeriodicSampler,
    TelemetryConfig,
    attach_samplers,
)
from repro.workloads.sources import BulkSource

from tests.conftest import make_two_path


def _fmtcp(network, paths, trace, seed=7):
    return FmtcpConnection(
        network.sim, paths, BulkSource(), config=FmtcpConfig(),
        trace=trace, rng=RngStreams(seed),
    )


def _collect(trace, kinds):
    seen = {kind: [] for kind in kinds}
    for kind in kinds:
        trace.subscribe(kind, seen[kind].append)
    return seen


def test_attach_samplers_fmtcp_emits_all_series():
    network, paths, trace = make_two_path(loss2=0.05)
    connection = _fmtcp(network, paths, trace)
    seen = _collect(
        trace, ["telemetry.subflow", "telemetry.decoder", "telemetry.conn"]
    )
    registry = MetricsRegistry()
    samplers = attach_samplers(
        network.sim, connection, trace, period_s=0.1, registry=registry
    )
    assert len(samplers) == 3
    connection.start()
    network.sim.run(until=3.0)

    subflow_records = seen["telemetry.subflow"]
    assert subflow_records, "no subflow samples"
    ids = {record["subflow"] for record in subflow_records}
    assert ids == {0, 1}
    sample = subflow_records[-1]
    for key in ("cwnd", "ssthresh", "srtt", "rto", "in_flight", "loss_est", "eat"):
        assert key in sample.fields
    assert sample["eat"] is not None  # FMTCP sender provides the EAT table

    assert seen["telemetry.conn"], "no connection samples"
    assert "pending_blocks" in seen["telemetry.conn"][-1].fields

    # Registry got the folded-in aggregates.
    assert registry.gauge("subflow0.cwnd").value is not None
    assert registry.histogram("subflow0.srtt_ms").count > 0
    assert registry.counter("decoder.blocks_decoded").value > 0
    assert registry.histogram("decoder.decode_latency_s").count > 0


def test_attach_samplers_mptcp_duck_typing():
    network, paths, trace = make_two_path()
    connection = MptcpConnection(
        network.sim, paths, BulkSource(), config=MptcpConfig(), trace=trace
    )
    seen = _collect(trace, ["telemetry.subflow", "telemetry.conn"])
    samplers = attach_samplers(network.sim, connection, trace, period_s=0.1)
    # MPTCP has no fountain decoder, so no DecoderSampler.
    assert len(samplers) == 2
    connection.start()
    network.sim.run(until=2.0)
    assert seen["telemetry.subflow"]
    assert seen["telemetry.subflow"][-1]["eat"] is None
    assert "reorder_occupancy" in seen["telemetry.conn"][-1].fields
    for sampler in samplers:
        sampler.stop()


def test_sampler_stop_cancels_pending_event(sim):
    class Noop(PeriodicSampler):
        def sample(self):
            pass

    sampler = Noop(sim, period_s=0.1)
    sampler.start()
    assert sim.pending_events == 1
    sampler.stop()
    sim.drain_cancelled()
    assert sim.pending_events == 0
    # Stop mid-run too: the rescheduled event must also be cancelled.
    sampler.start()
    sim.run(until=0.35)
    assert sampler.samples_taken == 3
    sampler.stop()
    sim.drain_cancelled()
    assert sim.pending_events == 0


def test_sampler_validation(sim):
    class Noop(PeriodicSampler):
        def sample(self):
            pass

    with pytest.raises(ValueError):
        Noop(sim, period_s=0.0)


def test_no_telemetry_records_without_samplers():
    """The zero-cost path: an uninstrumented run emits no telemetry.*
    records and pays no subscriber cost at the emit call sites."""
    network, paths, trace = make_two_path()
    connection = _fmtcp(network, paths, trace)
    assert not trace.has_subscribers("telemetry.subflow")
    seen = _collect(trace, ["telemetry.subflow", "telemetry.decoder", "telemetry.conn"])
    connection.start()
    network.sim.run(until=2.0)
    assert all(not records for records in seen.values())


def test_decoder_sampler_unsubscribes_on_stop():
    network, paths, trace = make_two_path()
    connection = _fmtcp(network, paths, trace)
    registry = MetricsRegistry()
    samplers = attach_samplers(
        network.sim, connection, trace, period_s=0.1, registry=registry
    )
    for sampler in samplers:
        sampler.stop()
    before = registry.counter("decoder.blocks_decoded").value
    connection.start()
    network.sim.run(until=2.0)
    # Stopped sampler must no longer fold block_decoded events in.
    assert registry.counter("decoder.blocks_decoded").value == before


def test_run_transfer_with_telemetry_config(tmp_path):
    from repro.experiments.runner import run_transfer

    trace_path = tmp_path / "run.jsonl"
    result = run_transfer(
        "fmtcp",
        [PathConfig(bandwidth_bps=4e6, delay_s=0.02, loss_rate=0.01)] * 2,
        duration_s=3.0,
        telemetry=TelemetryConfig(
            sample_period_s=0.1,
            trace_path=str(trace_path),
            profile_sim=True,
            flight_capacity=64,
        ),
    )
    report = result.telemetry
    assert report is not None
    assert report.trace_records_written > 0
    assert trace_path.exists()
    assert report.profile is not None and report.profile["events"] > 0
    assert 0 < report.flight_records <= 64
    assert any("subflow0" in name for name in report.metrics)
    assert report.render()


def test_run_transfer_without_telemetry_has_none():
    from repro.experiments.runner import run_transfer

    result = run_transfer(
        "fmtcp",
        [PathConfig(bandwidth_bps=4e6, delay_s=0.02)] * 2,
        duration_s=1.0,
    )
    assert result.telemetry is None


def test_telemetry_config_validation():
    with pytest.raises(ValueError):
        TelemetryConfig(sample_period_s=0.0)
    with pytest.raises(ValueError):
        TelemetryConfig(flight_capacity=-1)


def test_telemetry_session_finish_is_idempotent(sim, trace):
    from repro.telemetry import TelemetrySession

    session = TelemetrySession(sim, trace, config=TelemetryConfig(profile_sim=True))
    assert sim.profiler is session.profiler
    first = session.finish()
    second = session.finish()
    assert sim.profiler is None
    assert first.profile is not None and second.profile is not None


def test_telemetry_session_stop_is_idempotent_from_crash_paths(tmp_path, sim, trace):
    """Recovery teardown calls ``stop()`` with no report; a later second
    stop (or ``finish()``) must not double-cancel samplers, double-close
    the trace writer/flight ring, or detach someone else's profiler."""
    from repro.net.topology import PathConfig, build_two_path_network
    from repro.sim.rng import RngStreams
    from repro.telemetry import TelemetryConfig, TelemetrySession
    from repro.telemetry.profiler import SimProfiler
    from repro.workloads.sources import BulkSource
    from repro.mptcp.connection import MptcpConnection

    configs = [PathConfig(bandwidth_bps=4e6, delay_s=0.02) for __ in range(2)]
    network, paths = build_two_path_network(configs, rng=RngStreams(1))
    connection = MptcpConnection(network.sim, paths, BulkSource(50_000))
    session = TelemetrySession(
        network.sim,
        trace,
        config=TelemetryConfig(
            sample_period_s=0.1,
            trace_path=str(tmp_path / "crash.jsonl"),
            profile_sim=True,
            flight_capacity=32,
        ),
    )
    session.attach(connection)
    connection.start()
    network.sim.run(until=0.5)

    session.stop()  # the crash path: teardown mid-run, no report
    assert all(not s._running for s in session.samplers)
    assert network.sim.profiler is None
    session.stop()  # double-stop from a second crash handler: no raise
    report = session.finish()  # and a late report still works
    assert report.trace_records_written > 0
    connection.close()

    # stop() must not steal a profiler installed after the session's.
    other_sim_session = TelemetrySession(sim, trace, config=TelemetryConfig(profile_sim=True))
    replacement = SimProfiler()
    sim.set_profiler(replacement)
    other_sim_session.stop()
    assert sim.profiler is replacement
    sim.set_profiler(None)
