"""The ``repro trace`` subcommand family, record through analysis."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def recorded_trace(tmp_path_factory):
    """One short recorded run shared by all analysis-command tests."""
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    assert (
        main(
            [
                "--duration", "3",
                "trace", "record",
                "--case", "2",
                "--output", str(path),
                "--profile",
            ]
        )
        == 0
    )
    return str(path)


def test_parser_knows_trace_subcommands():
    parser = build_parser()
    for argv in (
        ["trace", "record"],
        ["trace", "summarize", "f.jsonl"],
        ["trace", "subflows", "f.jsonl"],
        ["trace", "timeline", "f.jsonl", "--kind", "subflow.loss"],
        ["trace", "export-csv", "f.jsonl"],
        ["trace", "spans", "f.jsonl"],
        ["trace", "critical-path", "f.jsonl", "--top", "3"],
    ):
        args = parser.parse_args(argv)
        assert callable(args.fn)


def test_bare_trace_prints_help(capsys):
    assert main(["trace"]) == 0
    out = capsys.readouterr().out
    assert "summarize" in out and "export-csv" in out


def test_record_reports_progress(tmp_path, capsys):
    output = tmp_path / "quick.jsonl"
    assert main(
        ["--duration", "1", "trace", "record", "--case", "1", "--output", str(output)]
    ) == 0
    out = capsys.readouterr().out
    assert "records written" in out
    assert "trace summarize" in out


def test_summarize_renders_kind_table_and_goodput(recorded_trace, capsys):
    assert main(["trace", "summarize", recorded_trace]) == 0
    out = capsys.readouterr().out
    assert "records over t=" in out
    assert "telemetry.subflow" in out
    assert "goodput:" in out
    assert "block delay (ms):" in out


def test_subflows_renders_series(recorded_trace, capsys):
    assert main(["trace", "subflows", recorded_trace]) == 0
    out = capsys.readouterr().out
    assert "subflow 0:" in out and "subflow 1:" in out
    assert "cwnd" in out and "srtt(ms)" in out and "eat(ms)" in out


def test_timeline_filters_and_limits(recorded_trace, capsys):
    assert main(
        [
            "trace", "timeline", recorded_trace,
            "--kind", "conn.delivered",
            "--limit", "5",
        ]
    ) == 0
    out = capsys.readouterr().out.strip().splitlines()
    data_lines = [line for line in out if "conn.delivered" in line]
    assert 0 < len(data_lines) <= 5
    assert all("conn.delivered" in line for line in out if "elided" not in line)


def test_timeline_window(recorded_trace, capsys):
    assert main(
        [
            "trace", "timeline", recorded_trace,
            "--kind", "telemetry.conn",
            "--start", "1.0", "--end", "2.0",
            "--limit", "100",
        ]
    ) == 0
    out = capsys.readouterr().out.strip().splitlines()
    times = [float(line.split()[0]) for line in out if "telemetry.conn" in line]
    assert times and all(1.0 <= t <= 2.0 for t in times)


def test_export_csv_stdout_and_file(recorded_trace, capsys, tmp_path):
    assert main(
        ["trace", "export-csv", recorded_trace, "--kind", "telemetry.subflow"]
    ) == 0
    out = capsys.readouterr().out
    header = out.splitlines()[0]
    assert header.startswith("t,kind,")
    assert "cwnd" in header and "srtt" in header

    output = tmp_path / "subflows.csv"
    assert main(
        [
            "trace", "export-csv", recorded_trace,
            "--kind", "telemetry.subflow",
            "--output", str(output),
        ]
    ) == 0
    assert output.read_text().splitlines()[0] == header


def test_summarize_handles_flight_dump(tmp_path, capsys):
    from repro.sim.trace import TraceBus
    from repro.telemetry import FlightRecorder

    trace = TraceBus()
    flight = FlightRecorder(trace, capacity=8)
    for index in range(12):
        trace.emit(float(index), "k", seq=index)
    path = tmp_path / "dump.jsonl"
    flight.dump(str(path), meta={"scenario": "unit"})
    assert main(["trace", "summarize", str(path)]) == 0
    out = capsys.readouterr().out
    assert "flight-recorder dump" in out
    assert "scenario=unit" in out


def test_subflows_explains_missing_telemetry(tmp_path, capsys):
    from repro.sim.trace import TraceBus
    from repro.sim.tracefile import TraceFileWriter

    trace = TraceBus()
    path = tmp_path / "bare.jsonl"
    with TraceFileWriter(trace, str(path)):
        trace.emit(0.0, "subflow.send", subflow=0, seq=1)
    assert main(["trace", "subflows", str(path)]) == 0
    assert "no telemetry.subflow samples" in capsys.readouterr().out


def test_summarize_surfaces_trace_bus_drops(tmp_path, capsys):
    import json

    path = tmp_path / "dropped.jsonl"
    lines = [
        {"t": 0.0, "kind": "conn.delivered", "bytes": 1000},
        {"t": 1.0, "kind": "trace.dropped", "dropped": 42, "max_pending": 8},
    ]
    path.write_text("".join(json.dumps(line) + "\n" for line in lines))
    assert main(["trace", "summarize", str(path)]) == 0
    out = capsys.readouterr().out
    assert "dropped 42 records" in out
    assert "max_pending 8" in out


def test_spans_renders_stage_table(recorded_trace, capsys):
    # The recorded trace's wildcard writer captured every span record, so
    # the offline decomposition works without any --spans flag at record
    # time.
    assert main(["trace", "spans", recorded_trace]) == 0
    out = capsys.readouterr().out
    assert "finished block spans" in out
    for stage in ("sched_wait", "transmit", "decode_wait", "reorder_wait"):
        assert stage in out
    assert "p95" in out or "p95(ms)" in out


def test_critical_path_renders_slowest_blocks(recorded_trace, capsys):
    assert main(["trace", "critical-path", recorded_trace, "--top", "2"]) == 0
    out = capsys.readouterr().out
    assert "slowest 2 of" in out
    assert "critical stage" in out
    assert "legs:" in out


def test_summarize_hints_at_span_decomposition(recorded_trace, capsys):
    assert main(["trace", "summarize", recorded_trace]) == 0
    out = capsys.readouterr().out
    assert "span records" in out
    assert "repro trace spans" in out


def test_unknown_trace_subcommand_exits_2_with_menu(capsys):
    assert main(["trace", "bogus"]) == 2
    captured = capsys.readouterr()
    assert "invalid choice" in captured.err
    assert "trace subcommands:" in captured.out
    assert "spans" in captured.out and "critical-path" in captured.out


@pytest.mark.parametrize(
    "subcommand", ["summarize", "subflows", "timeline", "export-csv", "spans"]
)
def test_missing_trace_file_exits_2_with_menu(subcommand, capsys, tmp_path):
    assert main(["trace", subcommand, str(tmp_path / "nope.jsonl")]) == 2
    captured = capsys.readouterr()
    assert "error: cannot read trace file" in captured.err
    assert "trace subcommands:" in captured.out


def test_corrupt_trace_file_exits_2_with_menu(tmp_path, capsys):
    path = tmp_path / "corrupt.jsonl"
    # Mid-file garbage (a torn *last* line would be silently dropped).
    path.write_text('{"t": 0.0, "kind": "a"}\nnot json at all\n{"t": 1.0}\n')
    assert main(["trace", "spans", str(path)]) == 2
    captured = capsys.readouterr()
    assert "not a JSONL trace file" in captured.err
    assert "trace subcommands:" in captured.out


def test_record_with_spans_prints_conservation_line(tmp_path, capsys):
    output = tmp_path / "spanned.jsonl"
    assert main(
        [
            "--duration", "1",
            "trace", "record",
            "--case", "1",
            "--output", str(output),
            "--spans",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "spans:" in out
    assert "conservation error" in out
