"""Trace soak: both protocols through every trace preset, many seeds.

Every run must satisfy the invariants checked by
:func:`repro.traces.run_traces`:

1. byte-identical delivery (reassembled stream == source transcript);
2. exactly-once, in-order delivery;
3. bounded memory while the trace crushes bandwidth (peak receiver
   occupancy within the flow-control budget);
4. watchdog interplay — no false clean-fail on a completing transfer,
   no silent hang on an incomplete one;
5. completion after the restore event heals the channel;
6. the replay actually ticked (no vacuous pass);
7. no wedged timers, event queue drains.

Seeded and fully deterministic: a failure reproduces exactly from the
seed named in the assertion message. Set ``REPRO_FLIGHT_DIR`` for
flight-recorder dumps of failing runs (CI uploads them as artifacts);
``REPRO_FAST=1`` runs a single seed per preset.
"""

import os

import pytest

from repro.faults import TRACE_SCENARIOS, FaultScenario, run_traces
from repro.faults.scenario import trace_replay_scenario
from repro.traces import TraceReport, gprs_trace

SOAK_SEEDS = (1,) if os.environ.get("REPRO_FAST") else tuple(range(1, 31))
FLIGHT_DIR = os.environ.get("REPRO_FLIGHT_DIR") or None


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
@pytest.mark.parametrize("name", sorted(TRACE_SCENARIOS))
def test_trace_soak_presets(protocol, name):
    """30 seeds per preset per protocol, zero violations."""
    failures = []
    for seed in SOAK_SEEDS:
        report = run_traces(
            protocol,
            TRACE_SCENARIOS[name](),
            seed=seed,
            flight_dump_dir=FLIGHT_DIR,
        )
        if not report.ok:
            detail = f"seed {seed}: {report.violations}"
            if report.flight_dump_path:
                detail += f" [flight dump: {report.flight_dump_path}]"
            failures.append(detail)
    assert not failures, (
        f"{name}/{protocol} trace violations:\n" + "\n".join(failures)
    )


def test_trace_report_shape():
    report = run_traces("fmtcp", TRACE_SCENARIOS["gprs_bursty"]())
    assert isinstance(report, TraceReport)
    assert report.protocol == "fmtcp"
    assert report.scenario_name == "gprs_bursty"
    assert report.completed and report.completion_time_s is not None
    assert report.trace_ticks > 0
    assert 0 < report.peak_occupancy <= report.budget_units
    assert report.delivered_bytes == report.expected_bytes
    assert not report.watchdog_failed
    assert report.ok and not report.violations


def test_trace_runs_deterministic():
    a = run_traces("fmtcp", TRACE_SCENARIOS["leo_handover"](), seed=5)
    b = run_traces("fmtcp", TRACE_SCENARIOS["leo_handover"](), seed=5)
    assert a.completion_time_s == b.completion_time_s
    assert a.delivered_bytes == b.delivered_bytes
    assert a.trace_ticks == b.trace_ticks
    assert a.peak_occupancy == b.peak_occupancy


def test_trace_replay_scenario_wraps_custom_trace():
    scenario = trace_replay_scenario(gprs_trace(seed=9))
    assert scenario.has_trace
    report = run_traces("fmtcp", scenario, seed=1)
    assert report.ok, report.violations


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
def test_trace_scenarios_rejected_by_other_harnesses(protocol):
    from repro.faults import run_chaos, run_corruption

    scenario = TRACE_SCENARIOS["gprs_bursty"]()
    with pytest.raises(ValueError, match="replays channel traces"):
        run_chaos(protocol, scenario, seed=1)
    with pytest.raises(ValueError, match="no corruption events"):
        run_corruption(protocol, scenario, seed=1)


def test_non_trace_scenario_rejected_by_run_traces():
    with pytest.raises(ValueError, match="no trace events"):
        run_traces("fmtcp", FaultScenario.named("path_death"), seed=1)
