"""TraceFileWriter lifecycle and crash tolerance of the JSONL format."""

import json

import pytest

from repro.sim.trace import TraceBus
from repro.sim.tracefile import TraceFileWriter, _jsonable, read_trace_file


def test_context_manager_closes_and_detaches(tmp_path):
    trace = TraceBus()
    path = tmp_path / "t.jsonl"
    with TraceFileWriter(trace, str(path)) as writer:
        trace.emit(0.0, "k")
        assert not writer.closed
    assert writer.closed
    assert not trace.has_subscribers("k")
    trace.emit(1.0, "k")
    assert len(read_trace_file(str(path))) == 1


def test_close_is_idempotent(tmp_path):
    trace = TraceBus()
    with TraceFileWriter(trace, str(tmp_path / "t.jsonl")) as writer:
        writer.close()
        writer.close()  # explicit close inside the with block is fine


def test_flush_makes_lines_visible_before_close(tmp_path):
    trace = TraceBus()
    path = tmp_path / "t.jsonl"
    writer = TraceFileWriter(trace, str(path), flush_every=None)
    trace.emit(0.0, "k", n=1)
    writer.flush()
    # Readable mid-run: the writer is still attached.
    assert read_trace_file(str(path)) == [{"t": 0.0, "kind": "k", "n": 1}]
    writer.close()


def test_flush_every_n_records(tmp_path):
    trace = TraceBus()
    path = tmp_path / "t.jsonl"
    writer = TraceFileWriter(trace, str(path), flush_every=3)
    for index in range(7):
        trace.emit(float(index), "k")
    # Two automatic flushes at records 3 and 6; at least 6 lines on disk.
    assert len(read_trace_file(str(path))) >= 6
    writer.close()
    assert len(read_trace_file(str(path))) == 7


def test_flush_every_validation(tmp_path):
    with pytest.raises(ValueError):
        TraceFileWriter(TraceBus(), str(tmp_path / "t.jsonl"), flush_every=0)


def test_torn_trailing_line_is_dropped(tmp_path):
    """A crashed writer leaves a partial final line; the reader returns
    every complete record before it."""
    path = tmp_path / "crashed.jsonl"
    with open(path, "w") as handle:
        handle.write(json.dumps({"t": 0.0, "kind": "a"}) + "\n")
        handle.write(json.dumps({"t": 1.0, "kind": "b"}) + "\n")
        handle.write('{"t": 2.0, "kind": "c", "fie')  # torn mid-write
    records = read_trace_file(str(path))
    assert [record["kind"] for record in records] == ["a", "b"]


def test_torn_line_raises_in_strict_mode(tmp_path):
    path = tmp_path / "crashed.jsonl"
    with open(path, "w") as handle:
        handle.write(json.dumps({"t": 0.0, "kind": "a"}) + "\n")
        handle.write('{"torn')
    with pytest.raises(json.JSONDecodeError):
        read_trace_file(str(path), strict=True)


def test_mid_file_corruption_still_raises(tmp_path):
    path = tmp_path / "corrupt.jsonl"
    with open(path, "w") as handle:
        handle.write(json.dumps({"t": 0.0, "kind": "a"}) + "\n")
        handle.write("NOT JSON\n")
        handle.write(json.dumps({"t": 2.0, "kind": "c"}) + "\n")
    with pytest.raises(json.JSONDecodeError):
        read_trace_file(str(path))


def test_crashed_writer_leaves_parseable_file(tmp_path):
    """Simulated crash: the writer is abandoned without close(); whatever
    was flushed must read back cleanly."""
    trace = TraceBus()
    path = tmp_path / "abandoned.jsonl"
    writer = TraceFileWriter(trace, str(path), flush_every=2)
    for index in range(5):
        trace.emit(float(index), "k", seq=index)
    # No close() — only force the OS view like a dying process would.
    writer._handle.flush()
    records = read_trace_file(str(path))
    assert [record["seq"] for record in records] == [0, 1, 2, 3, 4]


# ----------------------------------------------------------------------
# _jsonable round-trips.
# ----------------------------------------------------------------------
class _Opaque:
    def __repr__(self):
        return "<Opaque thing>"


@pytest.mark.parametrize(
    "value, expected",
    [
        (1, 1),
        (1.5, 1.5),
        ("s", "s"),
        (True, True),
        (None, None),
        ((1, 2), [1, 2]),
        ([1, (2, 3)], [1, [2, 3]]),
        ({"a": (1,), 2: "b"}, {"a": [1], "2": "b"}),
        (_Opaque(), "<Opaque thing>"),
    ],
)
def test_jsonable_values(value, expected):
    converted = _jsonable(value)
    assert converted == expected
    json.dumps(converted)  # must always be serialisable


def test_nonscalar_fields_roundtrip_through_file(tmp_path):
    trace = TraceBus()
    path = tmp_path / "t.jsonl"
    with TraceFileWriter(trace, str(path)):
        trace.emit(
            0.5,
            "k",
            table={1: 0.25, 2: 0.5},
            seq=(7, 8),
            opaque=_Opaque(),
            none=None,
        )
    record = read_trace_file(str(path))[0]
    assert record["table"] == {"1": 0.25, "2": 0.5}
    assert record["seq"] == [7, 8]
    assert record["opaque"] == "<Opaque thing>"
    assert record["none"] is None


def test_close_writes_terminal_dropped_record(tmp_path):
    trace = TraceBus(max_pending=2)
    path = tmp_path / "t.jsonl"

    def burst(record):
        for __ in range(5):
            trace.emit(record.time, "quiet")

    trace.subscribe("burst", burst)
    with TraceFileWriter(trace, str(path)) as writer:
        trace.emit(3.0, "burst")
    assert trace.records_dropped == 3
    records = read_trace_file(str(path))
    terminal = records[-1]
    assert terminal["kind"] == "trace.dropped"
    assert terminal["dropped"] == 3
    assert terminal["max_pending"] == 2
    assert terminal["t"] == 3.0  # stamped at the last record's time


def test_no_terminal_record_without_drops(tmp_path):
    trace = TraceBus()
    path = tmp_path / "t.jsonl"
    with TraceFileWriter(trace, str(path)):
        trace.emit(0.0, "k")
    kinds = [record["kind"] for record in read_trace_file(str(path))]
    assert "trace.dropped" not in kinds
