"""Unit and property tests for the trace-driven link model.

Covers the CSV schema (Hypothesis round-trip: parse -> serialise ->
parse is the identity), the edge cases the schema must reject (empty
traces, non-monotonic timestamps, NaN/inf, out-of-range values), the
end-of-trace policies and interpolation semantics, the seeded
generators' determinism, the bundled package-data assets, and the
player's apply/restore contract against live links.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.loss import BernoulliLoss
from repro.net.topology import PathConfig, build_two_path_network
from repro.sim.rng import RngStreams
from repro.traces import (
    BUNDLED_TRACES,
    TRACE_GENERATORS,
    LinkTrace,
    TraceFormatError,
    TracePlayer,
    TraceSample,
    gprs_trace,
    load_bundled_trace,
    load_trace_csv,
    parse_trace_csv,
    resolve_trace,
)

# ----------------------------------------------------------------------
# Hypothesis: CSV round-trip.
# ----------------------------------------------------------------------
_times = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=20,
    unique=True,
).map(sorted)

_bandwidth = st.one_of(
    st.none(),
    st.floats(min_value=1e-3, max_value=1e10, allow_nan=False, allow_infinity=False),
)
_delay = st.one_of(
    st.none(),
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False),
)
_loss = st.one_of(
    st.none(),
    st.floats(
        min_value=0.0,
        max_value=1.0,
        exclude_max=True,
        allow_nan=False,
        allow_infinity=False,
    ),
)


@st.composite
def traces(draw):
    times = draw(_times)
    samples = [
        TraceSample(
            time_s=t,
            bandwidth_bps=draw(_bandwidth),
            delay_s=draw(_delay),
            loss_rate=draw(_loss),
        )
        for t in times
    ]
    end_policy = draw(st.sampled_from(("hold", "loop", "clear")))
    return LinkTrace("prop", samples, end_policy=end_policy)


@settings(max_examples=60, deadline=None)
@given(trace=traces())
def test_csv_round_trip_is_identity(trace):
    text = trace.to_csv()
    parsed = parse_trace_csv(text, name=trace.name, end_policy=trace.end_policy)
    assert len(parsed.samples) == len(trace.samples)
    for original, reparsed in zip(trace.samples, parsed.samples):
        # repr() serialisation preserves floats exactly — equality, not
        # approx, is the contract.
        assert reparsed == original
    # Second round trip is byte-identical (serialisation is canonical).
    assert parsed.to_csv() == text


# ----------------------------------------------------------------------
# Schema edge cases.
# ----------------------------------------------------------------------
def test_empty_trace_rejected():
    with pytest.raises(TraceFormatError, match="empty"):
        LinkTrace("empty", [])
    with pytest.raises(TraceFormatError, match="empty"):
        parse_trace_csv("time_s,bandwidth_bps,delay_s,loss_rate\n")


def test_single_row_trace_holds_forever():
    trace = parse_trace_csv(
        "time_s,bandwidth_bps,delay_s,loss_rate\n0.0,1000,,\n"
    )
    assert trace.duration_s == 0.0
    assert trace.sample_at(0.0).bandwidth_bps == 1000
    assert trace.sample_at(99.0).bandwidth_bps == 1000  # hold policy
    # Round-trips like any other trace.
    assert parse_trace_csv(trace.to_csv()).samples == trace.samples


def test_non_monotonic_timestamps_rejected():
    with pytest.raises(TraceFormatError, match="strictly increasing"):
        LinkTrace(
            "bad",
            [TraceSample(1.0, bandwidth_bps=1e6), TraceSample(1.0, bandwidth_bps=2e6)],
        )
    text = (
        "time_s,bandwidth_bps,delay_s,loss_rate\n"
        "2.0,1000,,\n"
        "1.0,2000,,\n"
    )
    with pytest.raises(TraceFormatError, match="strictly increasing"):
        parse_trace_csv(text)


@pytest.mark.parametrize(
    "row, message",
    [
        ("nan,1000,,", "finite"),
        ("0.0,inf,,", "finite"),
        ("0.0,nan,,", "finite"),
        ("0.0,-5,,", "positive"),
        ("0.0,0,,", "positive"),
        ("0.0,,-0.5,", "non-negative"),
        ("0.0,,inf,", "finite"),
        ("0.0,,,1.0", r"\[0, 1\)"),
        ("0.0,,,-0.1", r"\[0, 1\)"),
        ("0.0,junk,,", "number or blank"),
        ("0.0,1000,", "columns"),
        (",1000,,", "blank"),
    ],
)
def test_malformed_rows_rejected_with_line_numbers(row, message):
    text = f"time_s,bandwidth_bps,delay_s,loss_rate\n{row}\n"
    with pytest.raises(TraceFormatError, match=message) as excinfo:
        parse_trace_csv(text)
    assert "line 2" in str(excinfo.value)


def test_wrong_header_rejected():
    with pytest.raises(TraceFormatError, match="header"):
        parse_trace_csv("t,bw,d,l\n0.0,1,2,0\n")


def test_unknown_end_policy_rejected():
    with pytest.raises(TraceFormatError, match="end policy"):
        LinkTrace("bad", [TraceSample(0.0, bandwidth_bps=1.0)], end_policy="bounce")


def test_unreadable_file_raises_trace_format_error(tmp_path):
    with pytest.raises(TraceFormatError, match="cannot read"):
        load_trace_csv(str(tmp_path / "missing.csv"))


# ----------------------------------------------------------------------
# End policies + interpolation.
# ----------------------------------------------------------------------
def _two_step() -> list:
    return [
        TraceSample(0.0, bandwidth_bps=1000.0, delay_s=0.1, loss_rate=0.2),
        TraceSample(10.0, bandwidth_bps=3000.0, delay_s=0.3, loss_rate=0.0),
    ]


def test_end_policy_semantics():
    hold = LinkTrace("h", _two_step(), end_policy="hold")
    assert hold.sample_at(25.0).bandwidth_bps == 3000.0
    loop = LinkTrace("l", _two_step(), end_policy="loop")
    assert loop.sample_at(12.0).bandwidth_bps == 1000.0  # 12 mod 10 = 2
    clear = LinkTrace("c", _two_step(), end_policy="clear")
    assert clear.sample_at(10.0) is not None
    assert clear.sample_at(10.1) is None


def test_interpolation_lerps_bandwidth_and_delay_but_steps_loss():
    trace = LinkTrace("i", _two_step(), interpolate=True)
    mid = trace.sample_at(5.0)
    assert mid.bandwidth_bps == pytest.approx(2000.0)
    assert mid.delay_s == pytest.approx(0.2)
    assert mid.loss_rate == 0.2  # steps: previous sample's regime
    stepped = LinkTrace("s", _two_step(), interpolate=False)
    assert stepped.sample_at(5.0).bandwidth_bps == 1000.0


def test_sample_before_first_uses_first():
    trace = LinkTrace(
        "late",
        [TraceSample(5.0, bandwidth_bps=700.0), TraceSample(9.0, bandwidth_bps=900.0)],
    )
    assert trace.sample_at(0.0).bandwidth_bps == 700.0


# ----------------------------------------------------------------------
# Generators + resolve.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", sorted(TRACE_GENERATORS))
def test_generators_deterministic_and_valid(family):
    a = TRACE_GENERATORS[family](seed=7)
    b = TRACE_GENERATORS[family](seed=7)
    assert a.to_csv() == b.to_csv()
    assert a.to_csv() != TRACE_GENERATORS[family](seed=8).to_csv()
    assert a.duration_s >= 10.0
    for sample in a.samples:
        if sample.bandwidth_bps is not None:
            assert math.isfinite(sample.bandwidth_bps) and sample.bandwidth_bps > 0
        if sample.loss_rate is not None:
            assert 0.0 <= sample.loss_rate < 1.0


@pytest.mark.parametrize("name", BUNDLED_TRACES)
def test_bundled_assets_load_and_match_recipes(name):
    from repro.traces.generators import _BUNDLE_RECIPES

    bundled = load_bundled_trace(name)
    regenerated = _BUNDLE_RECIPES[name]()
    assert [
        (s.time_s, s.bandwidth_bps, s.delay_s, s.loss_rate) for s in bundled.samples
    ] == [
        (s.time_s, s.bandwidth_bps, s.delay_s, s.loss_rate)
        for s in regenerated.samples
    ], f"bundled asset {name} drifted from its recipe; regenerate with python -m repro.traces.generators"


def test_resolve_trace_specs(tmp_path):
    assert resolve_trace("gprs:3").name == "gprs:3"
    assert resolve_trace("cellular_drive").name == "cellular_drive"
    trace = gprs_trace(seed=2)
    assert resolve_trace(trace) is trace
    path = tmp_path / "mine.csv"
    path.write_text(trace.to_csv())
    assert resolve_trace(str(path)).name == "mine"
    with pytest.raises(ValueError, match="unknown trace spec"):
        resolve_trace("warp_drive")
    with pytest.raises(ValueError, match="seed must be an int"):
        resolve_trace("gprs:soon")
    with pytest.raises(ValueError, match="unknown bundled trace"):
        load_bundled_trace("nope")
    with pytest.raises(ValueError, match="trace spec"):
        resolve_trace(42)


# ----------------------------------------------------------------------
# Player contract.
# ----------------------------------------------------------------------
def _network():
    configs = [
        PathConfig(bandwidth_bps=1e6, delay_s=0.01, loss_rate=0.0) for __ in range(2)
    ]
    return build_two_path_network(configs, rng=RngStreams(1))


def test_player_applies_and_restores_baselines():
    network, paths = _network()
    links = paths[1].forward_links
    baseline_bw = links[0].bandwidth_bps
    baseline_loss = links[0].loss_model
    trace = LinkTrace(
        "t",
        [
            TraceSample(0.0, bandwidth_bps=5e4, delay_s=0.2, loss_rate=0.3),
            TraceSample(1.0, bandwidth_bps=2e5, delay_s=0.05, loss_rate=0.0),
        ],
    )
    player = TracePlayer(network.sim, links, trace, step_s=0.5)
    player.start()
    network.sim.run(until=0.6)
    assert links[0].bandwidth_bps == 5e4
    assert links[0].delay_s == 0.2
    assert isinstance(links[0].loss_model, BernoulliLoss)
    network.sim.run(until=1.2)
    assert links[0].bandwidth_bps == 2e5
    player.stop()
    assert links[0].bandwidth_bps == baseline_bw
    assert links[0].loss_model is baseline_loss
    assert not player.playing


def test_player_clear_policy_restores_on_its_own():
    network, paths = _network()
    links = paths[1].forward_links
    baseline_bw = links[0].bandwidth_bps
    trace = LinkTrace(
        "c", [TraceSample(0.0, bandwidth_bps=5e4)], end_policy="clear"
    )
    player = TracePlayer(network.sim, links, trace, step_s=0.25)
    player.start()
    network.sim.run(until=0.1)
    assert links[0].bandwidth_bps == 5e4
    network.sim.run(until=1.0)
    assert player.finished
    assert links[0].bandwidth_bps == baseline_bw
    # Hold-policy players stop ticking past the end, so a finished
    # player leaves nothing live in the event queue.
    network.sim.drain_cancelled()
    assert network.sim.pending_events == 0


def test_player_none_fields_mean_baseline():
    network, paths = _network()
    links = paths[1].forward_links
    baseline_delay = links[0].delay_s
    trace = LinkTrace("bwonly", [TraceSample(0.0, bandwidth_bps=7e4)])
    player = TracePlayer(network.sim, links, trace, step_s=0.5)
    player.start()
    network.sim.run(until=0.1)
    assert links[0].bandwidth_bps == 7e4
    assert links[0].delay_s == baseline_delay
    player.stop()


def test_player_rejects_bad_inputs():
    network, paths = _network()
    trace = LinkTrace("t", [TraceSample(0.0, bandwidth_bps=1e5)])
    with pytest.raises(ValueError, match="at least one link"):
        TracePlayer(network.sim, [], trace)
    with pytest.raises(ValueError, match="positive"):
        TracePlayer(network.sim, paths[1].forward_links, trace, step_s=0.0)
    player = TracePlayer(network.sim, paths[1].forward_links, trace)
    player.start()
    with pytest.raises(RuntimeError, match="already playing"):
        player.start()
    player.stop()
