"""export_csv edge cases: empty traces, heterogeneous field sets, and
column-order stability."""

from repro.telemetry import export_csv


def test_empty_records_yield_header_only():
    assert export_csv([]) == "t,kind\n"


def test_empty_trace_file_roundtrip(tmp_path):
    from repro.sim.tracefile import read_trace_file

    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert export_csv(read_trace_file(str(path))) == "t,kind\n"


def test_kind_filter_with_no_matches_yields_header_only():
    records = [{"t": 0.1, "kind": "a", "x": 1}]
    assert export_csv(records, kind="nope") == "t,kind\n"


def test_heterogeneous_fields_union_header_first_seen_order():
    records = [
        {"t": 0.1, "kind": "a", "x": 1},
        {"t": 0.2, "kind": "b", "y": 2, "z": 3},
        {"t": 0.3, "kind": "a", "x": 4, "w": 5},
    ]
    text = export_csv(records)
    lines = text.splitlines()
    # Base fields first, then union of keys in first-seen order.
    assert lines[0] == "t,kind,x,y,z,w"
    # Absent fields are empty cells, never omitted or shifted.
    assert lines[1] == "0.1,a,1,,,"
    assert lines[2] == "0.2,b,,2,3,"
    assert lines[3] == "0.3,a,4,,,5"


def test_none_values_render_as_empty_cells():
    records = [{"t": 0.1, "kind": "a", "x": None, "y": 0}]
    lines = export_csv(records).splitlines()
    assert lines[0] == "t,kind,x,y"
    assert lines[1] == "0.1,a,,0"


def test_column_order_is_deterministic_across_calls():
    records = [
        {"t": 0.1, "kind": "a", "b_field": 1, "a_field": 2},
        {"t": 0.2, "kind": "a", "c_field": 3},
    ]
    assert export_csv(records) == export_csv(records)
    header = export_csv(records).splitlines()[0]
    # First-seen order, not alphabetical.
    assert header == "t,kind,b_field,a_field,c_field"
