"""Perf-trajectory ledger: schema, append semantics, regression gate,
and the committed seed row the CI gate consumes."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "trajectory", Path(__file__).parent.parent / "benchmarks" / "trajectory.py"
)
trajectory = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("trajectory", trajectory)
_SPEC.loader.exec_module(trajectory)


def _row(events_per_s, label="x"):
    return {
        "schema": trajectory.SCHEMA_VERSION,
        "label": label,
        "events_per_s": events_per_s,
    }


def test_ledger_roundtrip_and_append(tmp_path):
    path = tmp_path / "BENCH_trajectory.json"
    assert trajectory.load_ledger(path) == {
        "schema": trajectory.SCHEMA_VERSION,
        "rows": [],
    }
    trajectory.append_row(_row(1000.0, "first"), path)
    ledger = trajectory.append_row(_row(990.0, "second"), path)
    assert len(ledger["rows"]) == 2
    on_disk = json.loads(path.read_text())
    assert on_disk["schema"] == trajectory.SCHEMA_VERSION
    assert [r["label"] for r in on_disk["rows"]] == ["first", "second"]


def test_unknown_schema_is_rejected(tmp_path):
    path = tmp_path / "BENCH_trajectory.json"
    path.write_text(json.dumps({"schema": 999, "rows": []}))
    with pytest.raises(ValueError, match="schema"):
        trajectory.load_ledger(path)


def test_regression_gate_logic():
    check = trajectory.check_regression
    # Fewer than two rows: nothing to compare.
    assert check([]) is None
    assert check([_row(1000.0)]) is None
    # Within threshold (25% default): fine, including improvements.
    assert check([_row(1000.0), _row(800.0)]) is None
    assert check([_row(1000.0), _row(1500.0)]) is None
    # A >25% drop fails with a diagnostic naming both rows.
    error = check([_row(1000.0, "good"), _row(700.0, "bad")])
    assert error is not None
    assert "good" in error and "bad" in error and "30.0%" in error
    # Tighter threshold catches smaller drops.
    assert check([_row(1000.0), _row(940.0)], threshold=0.05) is not None


def test_committed_ledger_has_schema_versioned_row():
    """The acceptance criterion: BENCH_trajectory.json exists in-repo
    with >= 1 schema-versioned row the CI gate can compare against."""
    ledger = trajectory.load_ledger()
    assert ledger["schema"] == trajectory.SCHEMA_VERSION
    assert len(ledger["rows"]) >= 1
    row = ledger["rows"][-1]
    assert row["schema"] == trajectory.SCHEMA_VERSION
    for field in (
        "label",
        "events",
        "events_per_s",
        "wall_s",
        "goodput_mbytes_per_s",
        "spans_finished",
        "stage_p50_ms",
    ):
        assert field in row, f"ledger row is missing {field!r}"
    assert row["events_per_s"] > 0
    assert row["spans_finished"] > 0


def test_probe_produces_complete_row():
    row = trajectory.probe(duration_s=2.0)
    assert row["schema"] == trajectory.SCHEMA_VERSION
    assert row["events"] > 0 and row["events_per_s"] > 0
    assert row["spans_finished"] > 0
    assert row["max_conservation_error_s"] < 1e-9
    assert set(row["stage_p50_ms"]) >= {"sched_wait", "transmit", "total"}
