"""Tests for the VBR video source and the link/queue monitors."""

import pytest

from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.metrics.collectors import MetricsSuite
from repro.net.monitors import QueueMonitor, UtilisationMonitor
from repro.net.queues import RedQueue
from repro.net.topology import PathConfig, build_two_path_network
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.workloads.sources import BulkSource
from repro.workloads.video import VbrVideoSource


# ----------------------------------------------------------------------
# VBR source.
# ----------------------------------------------------------------------
class PumpCounter:
    def __init__(self):
        self.pumps = 0

    def pump(self):
        self.pumps += 1


def test_vbr_mean_rate_matches_target():
    sim = Simulator()
    source = VbrVideoSource(sim, mean_rate_bps=2.4e6, fps=25.0, seed=1)
    source.attach(PumpCounter())
    sim.run(until=20.0)
    produced_bits = sum(source.frame_sizes) * 8
    assert produced_bits / 20.0 == pytest.approx(2.4e6, rel=0.1)


def test_vbr_iframes_are_larger():
    sim = Simulator()
    source = VbrVideoSource(
        sim, fps=25.0, gop_pattern="IPPP", jitter_fraction=0.0, seed=2
    )
    source.attach(PumpCounter())
    sim.run(until=4.0)
    i_frames = source.frame_sizes[0::4]
    p_frames = source.frame_sizes[1::4]
    assert min(i_frames) > max(p_frames)


def test_vbr_pull_respects_buffer():
    sim = Simulator()
    source = VbrVideoSource(sim, mean_rate_bps=8e5, fps=10.0, seed=3)
    assert source.pull(1000) == 0  # nothing emitted yet
    source.attach(PumpCounter())
    sim.run(until=0.5)
    total = 0
    while True:
        granted = source.pull(1400)
        if not granted:
            break
        total += granted
    assert total == sum(source.frame_sizes)


def test_vbr_total_frames_cap():
    sim = Simulator()
    source = VbrVideoSource(sim, fps=50.0, total_frames=5, seed=4)
    source.attach(PumpCounter())
    sim.run(until=5.0)
    assert len(source.frame_sizes) == 5
    while source.pull(10_000):
        pass
    assert source.exhausted


def test_vbr_wakes_connection_per_frame():
    sim = Simulator()
    counter = PumpCounter()
    source = VbrVideoSource(sim, fps=20.0, seed=5)
    source.attach(counter)
    sim.run(until=1.0)
    assert 19 <= counter.pumps <= 21


def test_vbr_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        VbrVideoSource(sim, mean_rate_bps=0.0)
    with pytest.raises(ValueError):
        VbrVideoSource(sim, gop_pattern="IXP")
    with pytest.raises(ValueError):
        VbrVideoSource(sim, jitter_fraction=1.5)


def test_vbr_streams_over_fmtcp():
    trace = TraceBus()
    network, paths = build_two_path_network(
        [
            PathConfig(bandwidth_bps=6e6, delay_s=0.02),
            PathConfig(bandwidth_bps=6e6, delay_s=0.04, loss_rate=0.05),
        ],
        rng=RngStreams(6),
        trace=trace,
    )
    metrics = MetricsSuite(trace)
    source = VbrVideoSource(network.sim, mean_rate_bps=2e6, fps=25.0, seed=6)
    connection = FmtcpConnection(
        network.sim, paths, source, config=FmtcpConfig(), trace=trace,
        rng=RngStreams(6),
    )
    source.attach(connection)
    connection.start()
    network.sim.run(until=20.0)
    # Everything the codec produced (minus the tail in flight) delivered.
    assert metrics.goodput.total_bytes > 0.9 * sum(source.frame_sizes)


# ----------------------------------------------------------------------
# Monitors.
# ----------------------------------------------------------------------
def saturated_link_network(queue_factory=None):
    trace = TraceBus()
    network, paths = build_two_path_network(
        [
            PathConfig(
                bandwidth_bps=4e6,
                delay_s=0.05,
                queue_factory=queue_factory,
            )
        ],
        rng=RngStreams(7),
        trace=trace,
    )
    connection = FmtcpConnection(
        network.sim, paths, BulkSource(), config=FmtcpConfig(), trace=trace,
        rng=RngStreams(7),
    )
    return network, paths, connection


def test_queue_monitor_sees_bufferbloat_under_droptail():
    network, paths, connection = saturated_link_network()
    monitor = QueueMonitor(network.sim, paths[0].forward_links[0], period_s=0.1)
    monitor.start()
    connection.start()
    network.sim.run(until=20.0)
    # Reno fills the drop-tail queue: a standing queue tens deep.
    assert monitor.mean_depth() > 20
    assert monitor.max_depth() <= 100


def test_red_keeps_queue_short():
    network, paths, connection = saturated_link_network(
        queue_factory=lambda: RedQueue(
            capacity=100, min_threshold=5, max_threshold=20, max_probability=0.2
        )
    )
    monitor = QueueMonitor(network.sim, paths[0].forward_links[0], period_s=0.1)
    monitor.start()
    connection.start()
    network.sim.run(until=20.0)
    assert monitor.mean_depth() < 20


def test_utilisation_monitor_full_link():
    network, paths, connection = saturated_link_network()
    monitor = UtilisationMonitor(network.sim, paths[0].forward_links[0], period_s=1.0)
    monitor.start()
    connection.start()
    network.sim.run(until=10.0)
    assert monitor.mean_utilisation() > 0.85
    assert all(value <= 1.05 for __, value in monitor.samples)


def test_monitor_stop_halts_sampling():
    network, paths, connection = saturated_link_network()
    monitor = QueueMonitor(network.sim, paths[0].forward_links[0], period_s=0.1)
    monitor.start()
    connection.start()
    network.sim.run(until=1.0)
    count = len(monitor.samples)
    monitor.stop()
    network.sim.run(until=2.0)
    assert len(monitor.samples) == count


@pytest.mark.parametrize("monitor_cls", [QueueMonitor, UtilisationMonitor])
def test_monitor_stop_cancels_pending_event(monitor_cls):
    """stop() must cancel the in-flight sample event so a stopped monitor
    does not keep the event heap alive (chaos-soak asserts
    pending_events == 0 after teardown)."""
    network, paths, __ = saturated_link_network()
    sim = network.sim
    monitor = monitor_cls(sim, paths[0].forward_links[0], period_s=0.1)
    monitor.start()
    assert sim.pending_events == 1
    monitor.stop()
    sim.drain_cancelled()
    assert sim.pending_events == 0
    # start/stop mid-run behaves the same.
    monitor.start()
    sim.run(until=0.35)
    monitor.stop()
    sim.drain_cancelled()
    assert sim.pending_events == 0


def test_monitor_start_is_idempotent():
    network, paths, __ = saturated_link_network()
    monitor = QueueMonitor(network.sim, paths[0].forward_links[0], period_s=0.1)
    monitor.start()
    monitor.start()
    assert network.sim.pending_events == 1
    monitor.stop()


def test_monitor_validation():
    sim = Simulator()
    network, paths, __ = saturated_link_network()
    with pytest.raises(ValueError):
        QueueMonitor(sim, paths[0].forward_links[0], period_s=0.0)
    with pytest.raises(ValueError):
        UtilisationMonitor(sim, paths[0].forward_links[0], period_s=-1.0)
