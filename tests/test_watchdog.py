"""The no-progress watchdog: stall detection and the escalation ladder."""

import pytest

from repro.robustness.watchdog import Watchdog, WatchdogConfig
from repro.sim.engine import Simulator
from repro.sim.trace import TraceBus
from repro.sim.tracefile import read_trace_file
from repro.telemetry.flight import FlightRecorder


class FakeSubflow:
    def __init__(self, subflow_id=0, srtt=0.05):
        self.subflow_id = subflow_id
        self.srtt = srtt
        self.in_flight = 3
        self.state = "established"
        self.potentially_failed = False


class FakeSender:
    def __init__(self):
        self.margin = 10.0
        self.pumps = 0

    def pump_all(self):
        self.pumps += 1


class FakeConnection:
    def __init__(self, srtt=0.05):
        self.delivered_bytes = 0
        self.subflows = [FakeSubflow(0, srtt), FakeSubflow(1, srtt * 2)]
        self.sender = FakeSender()
        self.pumps = 0

    def pump(self):
        self.pumps += 1

    def memory_stats(self):
        return {"recv_occupancy": 7}

    def flow_stats(self):
        return {"enabled": True, "flow_pauses": 2}


class FakeSampler:
    def __init__(self):
        self._running = True

    def stop(self):
        self._running = False


def test_config_validation():
    with pytest.raises(ValueError):
        WatchdogConfig(check_period_s=0.0)
    with pytest.raises(ValueError):
        WatchdogConfig(min_stall_s=0.0)


def test_stall_threshold_scales_with_srtt():
    sim = Simulator()
    connection = FakeConnection(srtt=0.5)  # slowest subflow srtt = 1.0
    watchdog = Watchdog(sim, connection, WatchdogConfig(stall_rtts=8.0))
    assert watchdog.stall_threshold_s() == pytest.approx(8.0)
    connection.subflows = []
    assert watchdog.stall_threshold_s() == pytest.approx(1.0)  # the floor


def test_progress_keeps_the_ladder_at_zero():
    sim = Simulator()
    connection = FakeConnection()
    watchdog = Watchdog(sim, connection, WatchdogConfig(min_stall_s=1.0))
    watchdog.start()

    def advance():
        connection.delivered_bytes += 1000
        sim.schedule(0.5, advance)

    sim.schedule(0.5, advance)
    sim.run(until=10.0)
    assert watchdog.escalation == 0
    assert not watchdog.failed
    assert watchdog.stalls_detected == 0
    watchdog.stop()


def test_escalation_ladder_shed_boost_fail():
    sim = Simulator()
    trace = TraceBus()
    seen = []
    trace.subscribe("*", lambda record: seen.append(record.kind))
    connection = FakeConnection()
    samplers = [FakeSampler(), FakeSampler()]
    watchdog = Watchdog(
        sim,
        connection,
        WatchdogConfig(min_stall_s=1.0, margin_boost=8.0),
        trace=trace,
        samplers=samplers,
    )
    watchdog.start()
    sim.run(until=10.0)

    assert watchdog.failed
    assert watchdog.escalation == 3
    assert watchdog.samplers_shed == 2
    assert all(not sampler._running for sampler in samplers)
    assert watchdog.margin_boosts == 1
    assert connection.sender.margin == pytest.approx(18.0)
    assert connection.sender.pumps == 1 and connection.pumps == 1
    assert seen == ["watchdog.shed", "watchdog.margin_boost", "watchdog.failed"]
    # The timer retired itself on failure: nothing left to run.
    assert sim.pending_events == 0

    diagnosis = watchdog.diagnosis
    assert diagnosis["memory"] == {"recv_occupancy": 7}
    assert diagnosis["flow"]["flow_pauses"] == 2
    assert [entry["id"] for entry in diagnosis["subflows"]] == [0, 1]


def test_margin_rung_is_noop_without_a_margin_knob():
    sim = Simulator()
    connection = FakeConnection()
    connection.sender = object()  # an MPTCP-style stack: no margin
    watchdog = Watchdog(sim, connection, WatchdogConfig(min_stall_s=1.0))
    watchdog.start()
    sim.run(until=10.0)
    assert watchdog.failed
    assert watchdog.margin_boosts == 0


def test_progress_mid_ladder_resets_escalation():
    sim = Simulator()
    connection = FakeConnection()
    watchdog = Watchdog(sim, connection, WatchdogConfig(min_stall_s=1.0))
    watchdog.start()
    # Let it climb one rung, then deliver bytes before the second.
    sim.schedule_at(1.5, lambda: setattr(connection, "delivered_bytes", 99))
    sim.run(until=1.6)
    assert watchdog.escalation == 0
    assert watchdog.stalls_detected == 1
    watchdog.stop()
    sim.drain_cancelled()
    assert sim.pending_events == 0


def test_failure_dumps_flight_post_mortem(tmp_path):
    sim = Simulator()
    trace = TraceBus()
    flight = FlightRecorder(trace, capacity=64)
    trace.emit(0.0, "conn.delivered", bytes=0)
    connection = FakeConnection()
    watchdog = Watchdog(
        sim,
        connection,
        WatchdogConfig(min_stall_s=1.0),
        trace=trace,
        flight=flight,
        dump_dir=str(tmp_path),
        label="unit test/run",
    )
    watchdog.start()
    sim.run(until=10.0)
    assert watchdog.dump_path is not None
    records = read_trace_file(watchdog.dump_path)
    assert records[0]["kind"] == "flight.meta"
    assert records[0]["reason"] == "watchdog_failed"
    assert any(record["kind"] == "watchdog.failed" for record in records)
