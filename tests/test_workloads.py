"""Tests for traffic sources and scenario catalogues."""

import pytest

from repro.net.loss import ScheduledLoss
from repro.sim.engine import Simulator
from repro.workloads.scenarios import (
    SUBFLOW1_CONFIG,
    TABLE1_CASES,
    surge_path_configs,
    table1_path_configs,
)
from repro.workloads.sources import BulkSource, CbrSource, RandomPayloadSource


# ----------------------------------------------------------------------
# BulkSource.
# ----------------------------------------------------------------------
def test_bulk_infinite_always_grants():
    source = BulkSource()
    assert source.pull(1400) == 1400
    assert not source.exhausted


def test_bulk_finite_grants_until_total():
    source = BulkSource(total_bytes=3000)
    assert source.pull(1400) == 1400
    assert source.pull(1400) == 1400
    assert source.pull(1400) == 200
    assert source.pull(1400) == 0
    assert source.exhausted


def test_bulk_negative_total_rejected():
    with pytest.raises(ValueError):
        BulkSource(total_bytes=-1)


# ----------------------------------------------------------------------
# RandomPayloadSource.
# ----------------------------------------------------------------------
def test_random_payload_transcript_matches_grants():
    source = RandomPayloadSource(total_bytes=250)
    chunks = []
    while True:
        chunk = source.pull(100)
        if not chunk:
            break
        chunks.append(chunk)
    assert [len(chunk) for chunk in chunks] == [100, 100, 50]
    assert b"".join(chunks) == bytes(source.transcript)
    assert source.exhausted


def test_random_payload_returns_bytes():
    source = RandomPayloadSource(total_bytes=10)
    assert isinstance(source.pull(10), bytes)


# ----------------------------------------------------------------------
# CbrSource.
# ----------------------------------------------------------------------
def test_cbr_credit_accrues_with_time():
    sim = Simulator()
    source = CbrSource(sim, rate_bps=8000.0)  # 1000 bytes/s
    assert source.pull(100) == 0
    sim.schedule(0.5, lambda: None)
    sim.run()
    assert source.pull(10_000) == 500
    assert source.pull(10_000) == 0  # credit consumed


def test_cbr_total_bytes_cap():
    sim = Simulator()
    source = CbrSource(sim, rate_bps=8000.0, total_bytes=300)
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert source.pull(10_000) == 300
    assert source.exhausted


def test_cbr_wakes_attached_connection():
    sim = Simulator()
    source = CbrSource(sim, rate_bps=8000.0, wake_interval=0.1, total_bytes=100)

    class FakeConnection:
        def __init__(self):
            self.pumps = 0

        def pump(self):
            self.pumps += 1

    connection = FakeConnection()
    source.attach(connection)
    sim.run(until=1.0)
    assert connection.pumps >= 5


def test_cbr_rate_validation():
    with pytest.raises(ValueError):
        CbrSource(Simulator(), rate_bps=0.0)


# ----------------------------------------------------------------------
# Scenarios.
# ----------------------------------------------------------------------
def test_table1_catalogue_matches_paper():
    assert len(TABLE1_CASES) == 8
    delays = [case.delay_s for case in TABLE1_CASES]
    losses = [case.loss_rate for case in TABLE1_CASES]
    assert delays == [0.100, 0.100, 0.100, 0.100, 0.025, 0.050, 0.100, 0.150]
    assert losses == [0.02, 0.05, 0.10, 0.15, 0.10, 0.10, 0.10, 0.10]


def test_subflow1_fixed_parameters():
    assert SUBFLOW1_CONFIG.delay_s == 0.100
    assert SUBFLOW1_CONFIG.loss_rate == 0.0


def test_table1_path_configs_shape():
    configs = table1_path_configs(TABLE1_CASES[4])
    assert len(configs) == 2
    assert configs[0].delay_s == 0.100 and configs[0].loss_rate == 0.0
    assert configs[1].delay_s == 0.025 and configs[1].loss_rate == 0.10


def test_surge_path_configs_schedule():
    configs = surge_path_configs(0.35)
    assert isinstance(configs[1].loss_model, ScheduledLoss)
    model = configs[1].loss_model
    assert model.rate_at(0.0) == pytest.approx(0.01)
    assert model.rate_at(100.0) == pytest.approx(0.35)
    assert model.rate_at(250.0) == pytest.approx(0.01)
    # Subflow 1 keeps the constant base loss.
    assert configs[0].loss_rate == pytest.approx(0.01)


def test_surge_validation():
    with pytest.raises(ValueError):
        surge_path_configs(1.0)


def test_case_labels_human_readable():
    assert "100ms/15%" in TABLE1_CASES[3].label()
